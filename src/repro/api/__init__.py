"""``repro.api`` — the library's one typed front door.

Every deployment style the reproduction supports — a one-shot estimate, a
Figure-3-style sweep, a continuously running telemetry stream — used to
have its own entry point with its own parameter spellings.  This facade
unifies them behind three small types:

>>> import numpy as np
>>> from repro.api import DeploymentConfig, PrivacyBudget, ShuffleSession
>>> session = ShuffleSession(
...     DeploymentConfig(mechanism="SOLH", d=64),
...     PrivacyBudget(eps=0.5, delta=1e-9),
... )
>>> result = session.estimate(histogram, seed=0)        # EstimateResult
>>> sweep = session.sweep(histogram, [0.2, 0.5, 1.0])   # SweepResultSet
>>> pipeline = session.stream(flush_size=50_000)        # TelemetryPipeline

Configs are frozen dataclasses validated at construction against the
mechanism registry's capability flags; every misconfiguration raises
:class:`~repro.core.errors.ConfigError` naming the offending field, with
did-you-mean suggestions for mechanism typos.  The verbs delegate to the
same engines the legacy entry points use (direct oracles,
``analysis.experiments.run_sweep``, ``service.TelemetryPipeline``) and
are bit-identical to them at fixed seeds — the facade packages, it never
re-implements.
"""

from ..core.errors import ConfigError
from ..persistence import (
    MemoryStateStore,
    SqliteStateStore,
    StateStore,
    StateStoreError,
)
from .config import AUTO_MECHANISM, MODELS, DeploymentConfig, PrivacyBudget
from .results import (
    ESTIMATE_SCHEMA,
    SWEEP_SCHEMA,
    Amplification,
    EstimateResult,
    SweepResultSet,
)
from .session import ShuffleSession

__all__ = [
    "AUTO_MECHANISM",
    "Amplification",
    "ConfigError",
    "DeploymentConfig",
    "ESTIMATE_SCHEMA",
    "EstimateResult",
    "MODELS",
    "MemoryStateStore",
    "PrivacyBudget",
    "SWEEP_SCHEMA",
    "ShuffleSession",
    "SqliteStateStore",
    "StateStore",
    "StateStoreError",
    "SweepResultSet",
]
