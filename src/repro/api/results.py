"""Rich result objects returned by the :mod:`repro.api` facade.

Both result types are self-describing records: they carry the estimates
*and* the configuration that produced them (mechanism, domain, population,
budget, amplification provenance), convert losslessly to plain dicts /
JSON (``to_dict`` / ``to_json`` with ``from_dict`` / ``from_json``
inverses — floats survive exactly via Python's shortest-repr JSON
encoding), and expose the analysis helpers consumers reach for first:
MSE against a known truth, analytical confidence bands via
:mod:`repro.analysis.confidence`, and top-k extraction.  Serialized JSON
is strict RFC 8259: non-finite floats (the NaN of infeasible sweep
cells) encode as null and decode back to NaN.

The serialized forms carry a ``schema`` tag (``ESTIMATE_SCHEMA`` /
``SWEEP_SCHEMA``) so downstream tooling — the benchmark JSON envelope in
``benchmarks/bench_common.py`` in particular — can validate what it is
ingesting.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..analysis.confidence import IntervalBand, frequency_band
from ..analysis.experiments import SweepResult, format_sweep_table
from ..analysis.metrics import mse as _mse
from ..analysis.metrics import top_k_from_estimates

#: schema tags embedded in the serialized forms
ESTIMATE_SCHEMA = "repro.estimate/1"
SWEEP_SCHEMA = "repro.sweep/1"


def _encode_floats(values) -> List[Optional[float]]:
    """Portable float encoding: non-finite (NaN of infeasible sweep cells)
    becomes null, since bare ``NaN`` tokens are invalid JSON per RFC 8259
    and break non-Python consumers."""
    return [float(v) if math.isfinite(v) else None for v in values]


def _decode_floats(values) -> List[float]:
    """Inverse of :func:`_encode_floats`: null parses back to NaN."""
    return [float("nan") if v is None else float(v) for v in values]


@dataclass(frozen=True)
class Amplification:
    """Shuffle-amplification provenance of one mechanism run.

    ``eps`` is the budget the deployment was configured with (central
    target or local spend, per the budget's model); ``eps_l`` and
    ``d_prime`` are what the built mechanism actually uses locally, when
    it exposes them (None for mechanisms without a local randomizer, e.g.
    the central baselines).
    """

    eps: float
    eps_l: Optional[float] = None
    d_prime: Optional[int] = None

    @property
    def gain(self) -> Optional[float]:
        """Multiplicative local-budget gain ``eps_l / eps`` (None if unknown)."""
        if self.eps_l is None:
            return None
        return self.eps_l / self.eps

    @property
    def amplified(self) -> bool:
        """True when shuffling let users spend more than the target."""
        return self.eps_l is not None and self.eps_l > self.eps * (1.0 + 1e-12)

    def to_dict(self) -> dict:
        return {"eps": self.eps, "eps_l": self.eps_l, "d_prime": self.d_prime}

    @classmethod
    def from_dict(cls, payload: dict) -> "Amplification":
        return cls(
            eps=payload["eps"],
            eps_l=payload.get("eps_l"),
            d_prime=payload.get("d_prime"),
        )


@dataclass(frozen=True)
class EstimateResult:
    """One calibrated frequency-estimate vector plus its provenance."""

    #: canonical registry name of the mechanism that ran
    mechanism: str
    #: privacy model the budget was expressed in ("central"/"local")
    model: str
    #: value-domain size and report population
    d: int
    n: int
    #: the budget the run was priced at
    eps: float
    delta: float
    #: per-value frequency estimates, aligned with ``range(d)``
    estimates: np.ndarray
    #: local-randomizer provenance
    amplification: Amplification
    #: closed-form per-value sampling variance (None if not registered)
    variance: Optional[float] = None

    def __post_init__(self):
        estimates = np.asarray(self.estimates, dtype=float)
        object.__setattr__(self, "estimates", estimates)

    # -- analysis ----------------------------------------------------------

    def mse(self, true_frequencies) -> float:
        """Mean squared error against a known truth vector."""
        return _mse(np.asarray(true_frequencies, dtype=float), self.estimates)

    def confidence_band(self, confidence: float = 0.95) -> IntervalBand:
        """Analytical symmetric confidence band around the estimates.

        Requires the mechanism to have a registered closed-form variance
        (``MechanismSpec.variance_fn``); raises ``ValueError`` otherwise.
        """
        if self.variance is None:
            raise ValueError(
                f"no closed-form variance available for {self.mechanism} "
                f"at these parameters; cannot build a confidence band"
            )
        return frequency_band(self.estimates, self.variance, confidence)

    def top_k(self, k: int) -> np.ndarray:
        """The ``k`` values with the largest estimated frequencies."""
        return top_k_from_estimates(self.estimates, k)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """Lossless plain-dict form (floats survive JSON exactly)."""
        return {
            "schema": ESTIMATE_SCHEMA,
            "mechanism": self.mechanism,
            "model": self.model,
            "d": self.d,
            "n": self.n,
            "eps": self.eps,
            "delta": self.delta,
            "variance": self.variance,
            "amplification": self.amplification.to_dict(),
            "estimates": _encode_floats(self.estimates),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, allow_nan=False)

    @classmethod
    def from_dict(cls, payload: dict) -> "EstimateResult":
        schema = payload.get("schema", ESTIMATE_SCHEMA)
        if schema != ESTIMATE_SCHEMA:
            raise ValueError(
                f"expected schema {ESTIMATE_SCHEMA!r}, got {schema!r}"
            )
        return cls(
            mechanism=payload["mechanism"],
            model=payload["model"],
            d=payload["d"],
            n=payload["n"],
            eps=payload["eps"],
            delta=payload["delta"],
            estimates=np.asarray(_decode_floats(payload["estimates"]), dtype=float),
            amplification=Amplification.from_dict(payload["amplification"]),
            variance=payload.get("variance"),
        )

    @classmethod
    def from_json(cls, text: str) -> "EstimateResult":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class SweepResultSet:
    """Aggregated sweep scores for a set of methods over an epsilon grid.

    Wraps the trial-plan engine's per-method
    :class:`~repro.analysis.experiments.SweepResult` rows with the sweep's
    own configuration, so one object is enough to re-render the table,
    re-plot the figure, or diff two runs.  This is also the canonical
    machine-readable schema every benchmark emits (see
    ``benchmarks/bench_common.py``).
    """

    results: tuple
    eps_values: tuple
    delta: float
    repeats: int
    workers: int = 1
    metric: str = "mse"
    d: Optional[int] = None
    n: Optional[int] = None

    def __post_init__(self):
        object.__setattr__(self, "results", tuple(self.results))
        object.__setattr__(
            self, "eps_values", tuple(float(e) for e in self.eps_values)
        )

    # -- access ------------------------------------------------------------

    @property
    def methods(self) -> tuple:
        """Row labels in sweep order."""
        return tuple(result.method for result in self.results)

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, method: str) -> SweepResult:
        for result in self.results:
            if result.method == method:
                return result
        raise KeyError(
            f"no sweep row for {method!r}; rows: {', '.join(self.methods)}"
        )

    def table(self, caption: Optional[str] = None) -> str:
        """The paper-style text table (``format_sweep_table``)."""
        return format_sweep_table(list(self.results), caption)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """Lossless plain-dict form — the shared benchmark JSON schema."""
        return {
            "schema": SWEEP_SCHEMA,
            "eps_values": list(self.eps_values),
            "delta": self.delta,
            "repeats": self.repeats,
            "workers": self.workers,
            "metric": self.metric,
            "d": self.d,
            "n": self.n,
            "results": [
                {
                    "method": result.method,
                    "eps": [float(e) for e in result.eps_values],
                    "mean": _encode_floats(result.means),
                    "std": _encode_floats(result.stds),
                }
                for result in self.results
            ],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, allow_nan=False)

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepResultSet":
        schema = payload.get("schema", SWEEP_SCHEMA)
        if schema != SWEEP_SCHEMA:
            raise ValueError(f"expected schema {SWEEP_SCHEMA!r}, got {schema!r}")
        results = tuple(
            SweepResult(
                method=row["method"],
                eps_values=list(row["eps"]),
                means=_decode_floats(row["mean"]),
                stds=_decode_floats(row["std"]),
            )
            for row in payload["results"]
        )
        return cls(
            results=results,
            eps_values=tuple(payload["eps_values"]),
            delta=payload["delta"],
            repeats=payload["repeats"],
            workers=payload.get("workers", 1),
            metric=payload.get("metric", "mse"),
            d=payload.get("d"),
            n=payload.get("n"),
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepResultSet":
        return cls.from_dict(json.loads(text))
