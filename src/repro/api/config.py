"""Frozen configuration dataclasses for the :mod:`repro.api` facade.

Two values fully describe a deployment:

* :class:`PrivacyBudget` — how much privacy is spent and in which trust
  model (``"central"``: eps is the target against the server after
  shuffling; ``"local"``: eps is what each user's randomizer spends with
  no shuffler in the loop).
* :class:`DeploymentConfig` — what runs where: the mechanism (resolved
  and canonicalized against :mod:`repro.core.registry`, with did-you-mean
  suggestions on typos), the value domain, the population, and the
  shuffle-backend knobs the streaming verb uses.

Both validate eagerly in ``__post_init__`` and raise
:class:`~repro.core.errors.ConfigError` naming the offending field, so a
misconfiguration fails at construction — never as a numpy error three
layers down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.errors import (
    ConfigError,
    validate_backend_name,
    validate_composition,
    validate_domain_size,
    validate_shuffler_count,
)
from ..core.registry import MechanismSpec, UnknownMechanismError, get_spec

#: privacy models a budget can be expressed in
MODELS = ("central", "local")

#: the sentinel mechanism name that defers the choice to the Section VI-D
#: planner (valid only for the streaming verb)
AUTO_MECHANISM = "auto"


@dataclass(frozen=True)
class PrivacyBudget:
    """An ``(eps, delta)`` differential-privacy budget in a trust model.

    ``model="central"`` (default): ``eps`` is the guarantee against the
    paper's server adversary ``Adv`` — shuffle mechanisms amplify, so each
    user's local spend ``eps_l`` may be much larger.  ``model="local"``:
    ``eps`` is the local randomizer budget itself; only mechanisms whose
    registry spec declares ``local_model`` qualify (OLH, Hadamard).
    """

    eps: float
    delta: float = 1e-9
    model: str = "central"

    def __post_init__(self):
        if not self.eps > 0.0:
            raise ConfigError("eps", f"must be positive, got {self.eps}")
        if not 0.0 < self.delta < 1.0:
            raise ConfigError("delta", f"must be in (0, 1), got {self.delta}")
        if self.model not in MODELS:
            raise ConfigError(
                "model",
                f"must be one of {', '.join(MODELS)}; got {self.model!r}",
            )


@dataclass(frozen=True)
class DeploymentConfig:
    """Static description of one deployment the facade can drive.

    ``mechanism`` is any registry name or alias (case-insensitive) and is
    canonicalized at construction, or the special ``"auto"`` which defers
    the choice to the Section VI-D planner — valid only for
    :meth:`~repro.api.session.ShuffleSession.stream`.

    ``n`` is the planned population; leave it None to infer it from the
    data handed to each verb (the common case).  ``backend``, ``r``, and
    ``composition`` configure the streaming release path and are ignored
    by the one-shot and sweep verbs.
    """

    mechanism: str
    d: int
    n: Optional[int] = None
    backend: str = "plain"
    r: int = 3
    composition: str = "basic"

    def __post_init__(self):
        validate_domain_size(self.d)
        if self.n is not None and self.n < 1:
            raise ConfigError(
                "n", f"population must be >= 1 when given, got {self.n}"
            )
        if str(self.mechanism).casefold() == AUTO_MECHANISM:
            object.__setattr__(self, "mechanism", AUTO_MECHANISM)
        else:
            object.__setattr__(self, "mechanism", resolve_mechanism(self.mechanism).name)
        # Import here: the service layer must stay importable without the
        # facade, but the facade validates backend names against it.
        from ..service.backends import BACKEND_NAMES

        validate_backend_name(self.backend, BACKEND_NAMES)
        validate_shuffler_count(self.r)
        validate_composition(self.composition)

    @property
    def is_auto(self) -> bool:
        """True when the planner picks the mechanism (stream-only config)."""
        return self.mechanism == AUTO_MECHANISM

    @property
    def spec(self) -> MechanismSpec:
        """The registry spec behind this deployment's mechanism."""
        if self.is_auto:
            raise ConfigError(
                "mechanism",
                "mechanism 'auto' defers to the planner; name a registered "
                "mechanism to use estimate()/sweep()",
            )
        return get_spec(self.mechanism)


def resolve_mechanism(name: str) -> MechanismSpec:
    """Resolve a mechanism name, converting typos into :class:`ConfigError`.

    The registry's did-you-mean hint is preserved in the message, and the
    original :class:`UnknownMechanismError` stays chained as ``__cause__``.
    """
    try:
        return get_spec(name)
    except UnknownMechanismError as unknown:
        # KeyError str() wraps in quotes; unwrap for a readable message.
        raise ConfigError("mechanism", unknown.args[0]) from unknown
