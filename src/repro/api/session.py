"""The facade's one front door: :class:`ShuffleSession`.

A session binds a :class:`~repro.api.config.DeploymentConfig` (mechanism,
domain, backend) to a :class:`~repro.api.config.PrivacyBudget` and exposes
the library's three execution styles as three verbs:

* :meth:`ShuffleSession.estimate` — one mechanism run over a population
  histogram (or raw values), returning an
  :class:`~repro.api.results.EstimateResult`;
* :meth:`ShuffleSession.sweep` — the Figure 3 experiment: methods x
  epsilon grid x repeats on the deterministic parallel trial-plan engine,
  returning a :class:`~repro.api.results.SweepResultSet`;
* :meth:`ShuffleSession.stream` — a configured, ready-to-feed
  :class:`~repro.service.pipeline.TelemetryPipeline` for a continuous
  deployment, planned by Section VI-D.

Equivalence guarantees (enforced by ``tests/api``): each verb is a *thin*
delegate to the pre-existing engine — ``estimate`` matches the direct
``registry.build_mechanism(...).estimate_from_histogram(...)`` path,
``sweep`` matches :func:`repro.analysis.experiments.run_sweep`, and
``stream`` matches a hand-built ``StreamConfig`` + ``TelemetryPipeline``
— bit for bit at a fixed seed.  The facade adds validation, provenance,
and result packaging, never different math.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..analysis.experiments import run_sweep
from ..analysis.metrics import mse as _mse
from ..core.errors import ConfigError
from .config import DeploymentConfig, PrivacyBudget, resolve_mechanism
from .results import Amplification, EstimateResult, SweepResultSet


def _resolve_rng(
    rng: Optional[np.random.Generator], seed: Optional[int]
) -> np.random.Generator:
    """One rng-or-seed convention for every verb (rng wins when both given)."""
    if rng is not None:
        return rng
    return np.random.default_rng(seed)


def _resume_stream(store, stream_options: dict):
    """Resume a persisted run with the layout ``stream_options`` describe.

    The server's self-healing path: the deployment parameters live in
    the store's snapshot (they must match the crashed run bit for bit),
    while the execution layout — shards, fold backend, transport, kernel
    knobs, fault-tolerance knobs — is re-derived from the same options
    :meth:`ShuffleSession.serve` forwarded to the original
    :meth:`ShuffleSession.stream` call, so the recovered pipeline runs
    the way the operator configured it.
    """
    from ..service.pipeline import TelemetryPipeline
    from ..service.sharded import ShardedPipeline

    shards = int(stream_options.get("shards", 1))
    fold_backend = stream_options.get("backend", "serial")
    chunk_bytes = stream_options.get("chunk_bytes")
    if chunk_bytes is not None:
        from ..hashing.calibrate import resolve_chunk_bytes

        chunk_bytes = resolve_chunk_bytes(chunk_bytes, store=store)
    seed_cache_bytes = int(stream_options.get("seed_cache_bytes", 0))
    if shards == 1 and fold_backend == "serial":
        return TelemetryPipeline.resume(
            store,
            chunk_bytes=chunk_bytes,
            seed_cache_bytes=seed_cache_bytes,
        )
    return ShardedPipeline.resume(
        store,
        n_shards=shards,
        fold_backend=fold_backend,
        workers=stream_options.get("fold_workers"),
        transport=stream_options.get("transport", "shm"),
        chunk_bytes=chunk_bytes,
        seed_cache_bytes=seed_cache_bytes,
        fold_timeout=stream_options.get("fold_timeout"),
        max_fold_retries=int(stream_options.get("fold_retries", 2)),
        degrade=bool(stream_options.get("degrade", True)),
    )


class ShuffleSession:
    """A configured deployment, ready to estimate, sweep, or stream.

    Construction validates the (deployment, budget) pair against the
    mechanism registry's capability flags — e.g. a ``model="local"``
    budget refuses mechanisms whose factory amplifies a central target —
    so every verb can assume a coherent configuration.
    """

    def __init__(self, deployment: DeploymentConfig, budget: PrivacyBudget):
        self.deployment = deployment
        self.budget = budget
        if not deployment.is_auto:
            spec = deployment.spec
            if budget.model == "local" and not spec.local_model:
                raise ConfigError(
                    "model",
                    f"mechanism {spec.name!r} interprets eps as a central "
                    f"target (it amplifies); a model='local' budget needs a "
                    f"local-model mechanism such as OLH or Had",
                )

    def __repr__(self) -> str:
        return (
            f"ShuffleSession(mechanism={self.deployment.mechanism!r}, "
            f"d={self.deployment.d}, eps={self.budget.eps}, "
            f"model={self.budget.model!r})"
        )

    # -- one-shot ----------------------------------------------------------

    def estimate(
        self,
        histogram=None,
        *,
        values=None,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ) -> EstimateResult:
        """One mechanism run over a population; returns rich results.

        Give the population either as a length-``d`` ``histogram`` or as
        raw ``values`` in ``[0, d)`` (bincounted internally) — exactly one
        of the two.  The run draws support counts through the mechanism's
        ``estimate_from_histogram`` path (closed-form O(d) sampling where
        the spec declares it), identical to the legacy direct-oracle call.
        """
        spec = self.deployment.spec
        histogram = self._population_histogram(histogram, values)
        n = self.deployment.n
        if n is None:
            n = int(histogram.sum())
        if n < 1:
            raise ConfigError(
                "histogram", "population is empty; nothing to estimate"
            )
        mechanism = spec.build(
            self.deployment.d, n, self.budget.eps, self.budget.delta
        )
        estimates = mechanism.estimate_from_histogram(
            histogram, _resolve_rng(rng, seed)
        )
        # Local-randomizer provenance: central-model mechanisms (Lap, AUE,
        # Base) have no local spend even when they store a ``.eps`` —
        # their budget is the central one already carried by the result.
        if spec.central_only:
            eps_l = d_prime = None
        else:
            eps_l = getattr(mechanism, "eps", None)
            d_prime = getattr(mechanism, "d_prime", None)
        return EstimateResult(
            mechanism=spec.name,
            model=self.budget.model,
            d=self.deployment.d,
            n=n,
            eps=self.budget.eps,
            delta=self.budget.delta,
            estimates=estimates,
            amplification=Amplification(
                eps=self.budget.eps,
                eps_l=float(eps_l) if eps_l is not None else None,
                d_prime=int(d_prime) if d_prime is not None else None,
            ),
            variance=spec.variance(
                self.deployment.d, n, self.budget.eps, self.budget.delta
            ),
        )

    # -- sweeps ------------------------------------------------------------

    def sweep(
        self,
        histogram,
        eps_grid: Optional[Iterable[float]] = None,
        *,
        repeats: int = 10,
        workers: int = 1,
        backend: str = "thread",
        methods: Optional[Sequence[str]] = None,
        metric=_mse,
        skip_errors: bool = True,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ) -> SweepResultSet:
        """Run the epsilon sweep on the deterministic trial-plan engine.

        ``eps_grid`` defaults to the session budget's single eps;
        ``methods`` defaults to the session's mechanism and may name any
        registered set for comparative sweeps (Figure 3 passes the full
        competitor list).  ``backend`` picks the trial executor:
        ``"thread"`` (default) or ``"process"`` (a spawn-safe pool that
        also parallelizes GIL-bound work).  Results are bit-identical at
        any ``workers`` count on either backend, and identical to calling
        :func:`repro.analysis.experiments.run_sweep` directly.
        """
        histogram = self._population_histogram(histogram, None)
        if eps_grid is None:
            eps_list = [self.budget.eps]
        else:
            eps_list = [float(e) for e in eps_grid]
        if not eps_list:
            raise ConfigError("eps_grid", "needs at least one epsilon value")
        if any(not e > 0.0 for e in eps_list):
            raise ConfigError(
                "eps_grid", f"every epsilon must be positive, got {eps_list}"
            )
        if repeats < 1:
            raise ConfigError("repeats", f"must be >= 1, got {repeats}")
        if workers < 1:
            raise ConfigError("workers", f"must be >= 1, got {workers}")
        if backend not in ("thread", "process"):
            raise ConfigError(
                "backend",
                f"trial backend must be 'thread' or 'process', got {backend!r}",
            )
        if methods is None:
            method_names = (self.deployment.spec.name,)
        else:
            method_names = tuple(
                resolve_mechanism(name).name for name in methods
            )
            if not method_names:
                raise ConfigError("methods", "needs at least one mechanism")
        if self.budget.model == "local":
            for name in method_names:
                if not resolve_mechanism(name).local_model:
                    raise ConfigError(
                        "model",
                        f"cannot sweep {name!r} under a model='local' "
                        f"budget; it prices eps as a central target",
                    )
        results = run_sweep(
            method_names,
            histogram,
            eps_list,
            self.budget.delta,
            _resolve_rng(rng, seed),
            repeats=repeats,
            metric=metric,
            skip_errors=skip_errors,
            workers=workers,
            backend=backend,
        )
        return SweepResultSet(
            results=tuple(results),
            eps_values=tuple(eps_list),
            delta=self.budget.delta,
            repeats=repeats,
            workers=workers,
            metric=getattr(metric, "__name__", str(metric)),
            d=self.deployment.d,
            n=int(histogram.sum()),
        )

    # -- streaming ---------------------------------------------------------

    def stream(
        self,
        flush_size: int,
        *,
        eps_targets: Optional[tuple] = None,
        admitted_flushes: Optional[int] = None,
        epoch_size: Optional[int] = None,
        admitted_epochs: Optional[int] = None,
        flush_empty: bool = False,
        keep_reports: bool = False,
        shards: int = 1,
        backend: str = "serial",
        fold_workers: Optional[int] = None,
        transport: str = "shm",
        chunk_bytes=None,
        seed_cache_bytes: int = 0,
        fold_timeout: Optional[float] = None,
        fold_retries: int = 2,
        degrade: bool = True,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
        crypto_rng=None,
        store=None,
    ):
        """Plan and wire a continuous deployment; returns the pipeline.

        The Section VI-D planner sizes one flush against the three
        adversary targets ``eps_targets = (eps_1, eps_2, eps_3)``; the
        default derives them from the session budget as ``(eps, 3 eps,
        6 eps)`` — the library's standard target ratio.  The lifetime
        budget admits either ``admitted_flushes`` full flushes (default 6)
        or, when ``epoch_size`` and ``admitted_epochs`` are given, that
        many epochs priced at the actual flush schedule including
        remainders.

        A session pinned to a streamable mechanism (``"SOLH"``/``"SH"``)
        restricts the planner to it; ``mechanism="auto"`` keeps the
        paper's free variance-optimal choice.

        ``shards`` and ``backend`` select the fold execution: the
        defaults return the single-shard
        :class:`~repro.service.pipeline.TelemetryPipeline`; any other
        combination returns a
        :class:`~repro.service.sharded.ShardedPipeline` partitioning the
        flush stream over ``shards`` aggregator shards, folded inline
        (``backend="serial"``) or on ``fold_workers`` spawn-safe worker
        processes (``backend="process"``).  This ``backend`` is the
        *fold executor* — the shuffle backend (plain/sequential/peos)
        stays a property of the :class:`DeploymentConfig`.  Estimates
        are bit-identical across every shard/backend combination at a
        fixed seed.

        ``store`` selects where the pipeline journals its durable state
        (budget ledger, flush log, epoch snapshots): ``None`` keeps the
        zero-overhead in-memory default; a
        :class:`~repro.persistence.sqlite.SqliteStateStore` makes the
        run crash-safe and resumable via ``TelemetryPipeline.resume`` /
        ``ShardedPipeline.resume`` (CLI: ``repro stream --state-db
        PATH --resume``).

        Kernel tuning (pure execution knobs — estimates are
        bit-identical at any setting): ``chunk_bytes`` pins the
        support-count kernel's chunk budget, or the string ``"auto"``
        runs the one-shot timed calibration
        (:func:`repro.hashing.calibrate.ensure_calibration` — persisted
        in ``store`` when one is given, so later runs skip the probe);
        ``seed_cache_bytes > 0`` enables the cross-flush seed-row cache
        at that byte budget; ``transport`` picks how process folds
        receive payloads — zero-copy ``"shm"`` (the default) or legacy
        ``"pickle"`` (CLI: ``--no-shm``).

        Fault tolerance (sharded process folding only; ignored by the
        single-shard serial pipeline, whose folds run inline):
        ``fold_timeout`` bounds one fold's wall time before it is
        treated as hung, ``fold_retries`` caps consecutive retries of a
        failed fold before the transport degrades one rung
        (shm -> pickle -> serial), and ``degrade=False`` fails hard
        instead of walking the ladder.  Retries and degradations never
        change estimates — folds are pure given their sequence-keyed
        entropy.
        """
        from ..service.backends import make_backend
        from ..service.pipeline import StreamConfig, TelemetryPipeline
        from ..service.sharded import FOLD_BACKENDS, ShardedPipeline

        if shards < 1:
            raise ConfigError("shards", f"must be >= 1, got {shards}")
        if backend not in FOLD_BACKENDS:
            raise ConfigError(
                "backend",
                f"fold backend must be one of {', '.join(FOLD_BACKENDS)}, "
                f"got {backend!r}",
            )
        if fold_timeout is not None and not float(fold_timeout) > 0.0:
            raise ConfigError(
                "fold_timeout",
                f"must be positive seconds (or None for no timeout), "
                f"got {fold_timeout}",
            )
        if int(fold_retries) < 0:
            raise ConfigError(
                "fold_retries", f"must be >= 0, got {fold_retries}"
            )
        if chunk_bytes is not None:
            from ..hashing.calibrate import resolve_chunk_bytes

            try:
                chunk_bytes = resolve_chunk_bytes(chunk_bytes, store=store)
            except (TypeError, ValueError):
                raise ConfigError(
                    "chunk_bytes",
                    f"must be a positive byte count or 'auto', "
                    f"got {chunk_bytes!r}",
                ) from None
        if self.budget.model == "local":
            raise ConfigError(
                "model",
                "streaming deployments plan against central targets; "
                "use a model='central' budget",
            )
        planner_mechanism = None
        if not self.deployment.is_auto:
            spec = self.deployment.spec
            if not spec.streamable or spec.planner_id is None:
                raise ConfigError(
                    "mechanism",
                    f"mechanism {spec.name!r} is not streamable; use "
                    f"'SOLH', 'SH', or 'auto' (planner's choice)",
                )
            planner_mechanism = spec.planner_id
        if eps_targets is None:
            eps_targets = (
                self.budget.eps, 3.0 * self.budget.eps, 6.0 * self.budget.eps
            )
        eps_targets = tuple(eps_targets)
        if len(eps_targets) != 3:
            raise ConfigError(
                "eps_targets",
                f"needs the three adversary targets (eps_1, eps_2, eps_3), "
                f"got {eps_targets!r}",
            )
        if (epoch_size is None) != (admitted_epochs is None):
            raise ConfigError(
                "epoch_size",
                "epoch-based budgeting needs both epoch_size and "
                "admitted_epochs (or neither)",
            )
        common = dict(
            eps_targets=eps_targets,
            delta=self.budget.delta,
            mechanism=planner_mechanism,
            backend=self.deployment.backend,
            r=self.deployment.r,
            composition=self.deployment.composition,
            flush_empty=flush_empty,
            keep_reports=keep_reports,
        )
        if epoch_size is not None:
            if admitted_flushes is not None:
                raise ConfigError(
                    "admitted_flushes",
                    "give either admitted_flushes or "
                    "(epoch_size, admitted_epochs), not both",
                )
            config = StreamConfig.for_epochs(
                d=self.deployment.d,
                flush_size=flush_size,
                epoch_size=epoch_size,
                admitted_epochs=admitted_epochs,
                **common,
            )
        else:
            config = StreamConfig.from_targets(
                d=self.deployment.d,
                flush_size=flush_size,
                admitted_flushes=(
                    6 if admitted_flushes is None else admitted_flushes
                ),
                **common,
            )
        backend_instance = None
        if crypto_rng is not None and self.deployment.backend != "plain":
            backend_instance = make_backend(
                self.deployment.backend, r=self.deployment.r,
                crypto_rng=crypto_rng,
            )
        if shards == 1 and backend == "serial":
            return TelemetryPipeline(
                config, _resolve_rng(rng, seed), backend=backend_instance,
                store=store, chunk_bytes=chunk_bytes,
                seed_cache_bytes=seed_cache_bytes,
            )
        return ShardedPipeline(
            config,
            _resolve_rng(rng, seed),
            n_shards=shards,
            fold_backend=backend,
            workers=fold_workers,
            backend=backend_instance,
            store=store,
            transport=transport,
            chunk_bytes=chunk_bytes,
            seed_cache_bytes=seed_cache_bytes,
            fold_timeout=fold_timeout,
            max_fold_retries=fold_retries,
            degrade=degrade,
        )

    # -- serving -----------------------------------------------------------

    def serve(
        self,
        flush_size: int,
        *,
        host: str = "127.0.0.1",
        port: int = 8000,
        max_pending: int = 64,
        max_body_bytes: Optional[int] = None,
        retry_after_s: float = 1.0,
        max_recoveries: int = 3,
        recovery_backoff_s: float = 0.05,
        store=None,
        **stream_options,
    ):
        """Wire the deployment behind an HTTP front door; returns the server.

        Plans the same pipeline :meth:`stream` would (every keyword
        :meth:`stream` takes is accepted and forwarded —
        ``eps_targets``, ``epoch_size``/``admitted_epochs``, ``shards``,
        ``backend``, ``transport``, ``seed``, ...) and wraps it in a
        :class:`~repro.server.app.TelemetryServer` listening on
        ``host:port`` (``port=0`` picks a free port, exposed as
        ``server.port`` after start).  ``max_pending`` bounds the ingest
        queue — the explicit backpressure limit behind HTTP 429 —
        and ``max_body_bytes`` caps one upload (413 beyond it).

        ``store`` may be a :class:`~repro.persistence.store.StateStore`
        instance *or a zero-argument callable* building one; prefer the
        callable for :class:`~repro.persistence.sqlite.SqliteStateStore`
        — the factory runs on the server's single ingest thread, so the
        SQLite connection is created by the thread that uses it.

        A *callable* ``store`` building a durable state store also makes
        the server self-healing: an ingest-thread crash triggers up to
        ``max_recoveries`` bounded-backoff (``recovery_backoff_s`` base)
        resumes from the store's write-ahead log instead of a permanent
        503 — health reports ``degraded`` during the attempt and returns
        to ``ok``.  A store instance or an in-memory store keeps the
        fail-hard behavior (the broken pipeline's state cannot be
        rebuilt), as does ``max_recoveries=0``.

        The server is started from async code::

            server = session.serve(1000, port=0, epoch_size=2000,
                                   admitted_epochs=4,
                                   store=lambda: SqliteStateStore(path))
            async with server:
                ...  # POST /api/reports, GET /api/estimates, ...

        Misconfiguration raises :class:`~repro.core.errors.ConfigError`
        naming the offending field — network knobs immediately, pipeline
        knobs when ``start()`` builds the pipeline.
        """
        from ..server.app import (
            RecoveryUnsupportedError,
            ServerConfig,
            TelemetryServer,
        )
        from ..server.http import MAX_BODY_BYTES

        config = ServerConfig(
            host=host,
            port=port,
            max_pending=max_pending,
            max_body_bytes=(
                MAX_BODY_BYTES if max_body_bytes is None else max_body_bytes
            ),
            retry_after_s=retry_after_s,
            max_recoveries=max_recoveries,
            recovery_backoff_s=recovery_backoff_s,
        )

        def pipeline_factory():
            resolved = store() if callable(store) else store
            return self.stream(flush_size, store=resolved, **stream_options)

        recover_factory = None
        if callable(store):

            def recover_factory():
                from ..persistence import StateStoreError

                resolved = store()
                try:
                    if not getattr(resolved, "durable", False):
                        raise RecoveryUnsupportedError(
                            "the deployment's store is not durable; "
                            "nothing survives an ingest crash to resume "
                            "from"
                        )
                    try:
                        return _resume_stream(resolved, stream_options)
                    except StateStoreError as unreadable:
                        raise RecoveryUnsupportedError(
                            f"durable store cannot be resumed: {unreadable}"
                        ) from unreadable
                except BaseException as failure:
                    try:
                        resolved.close()
                    except Exception as close_failure:
                        raise failure from close_failure
                    raise

        return TelemetryServer(
            pipeline_factory, config, recover_factory=recover_factory
        )

    # -- shared helpers ----------------------------------------------------

    def _population_histogram(self, histogram, values) -> np.ndarray:
        """Coerce the histogram-or-values input to a validated histogram."""
        if (histogram is None) == (values is None):
            raise ConfigError(
                "histogram", "give exactly one of histogram= or values="
            )
        d = self.deployment.d
        if values is not None:
            values = np.asarray(values)
            if values.dtype.kind not in "iub":
                # Refuse rather than floor-truncate 3.7 -> 3 silently.
                if values.size and not np.all(values == np.floor(values)):
                    raise ConfigError(
                        "values", f"values must be integers in [0, {d})"
                    )
            if values.size and (values.min() < 0 or values.max() >= d):
                raise ConfigError(
                    "values", f"values outside the domain [0, {d})"
                )
            return np.bincount(values.astype(np.int64), minlength=d)
        histogram = np.asarray(histogram)
        if histogram.shape != (d,):
            raise ConfigError(
                "histogram",
                f"must have shape ({d},) to match the deployment's domain, "
                f"got {histogram.shape}",
            )
        if histogram.dtype.kind not in "iub":
            # Same rule as values=: refuse rather than floor-truncate.
            if not np.all(histogram == np.floor(histogram)):
                raise ConfigError(
                    "histogram", "counts must be non-negative integers"
                )
        if histogram.size and histogram.min() < 0:
            raise ConfigError("histogram", "counts must be non-negative")
        return histogram.astype(np.int64)
