"""One-shot timed calibration of the support-count kernel.

``plan_support_counts`` historically walked the hash matrix under a
static 64 MiB chunk budget — a number tuned on one machine.  The right
budget is a cache question (a chunk should be L2/L3-resident while the
bincount gathers run), so this module measures it: time the standard
kernel path over a small ladder of candidate budgets on a synthetic
workload shaped like the streaming hot path, pick the fastest, and
install it process-wide via
:func:`repro.hashing.kernels.set_active_chunk_bytes`.

Calibration is an *execution* choice, never an estimator one — every
budget computes bit-identical counts (``tests/hashing/test_calibrate.py``
pins this), so a stale or wrong calibration can cost time but never
correctness.  That is also why the persisted form lives in the state
store's advisory tuning bag (:meth:`repro.persistence.store.StateStore
.record_tuning`) rather than the write-ahead run record: resuming a run
on different hardware may freely recalibrate.

Typical wiring (what the facade's ``chunk_bytes="auto"`` does)::

    from repro.hashing.calibrate import ensure_calibration

    calibration = ensure_calibration(store)   # load, else measure+persist
    calibration.activate()                    # kernels now use it
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from .families import HashFamily, XXHash32Family
from .kernels import (
    plan_support_counts,
    set_active_chunk_bytes,
    support_counts_kernel,
)

__all__ = [
    "CALIBRATION_TUNING_KEY",
    "KernelCalibration",
    "calibrate_kernel",
    "ensure_calibration",
    "resolve_chunk_bytes",
]

#: name under which :func:`ensure_calibration` persists its result in a
#: state store's tuning bag
CALIBRATION_TUNING_KEY = "kernel_calibration"

#: chunk-budget ladder the timed probe walks: 1 MiB (well inside L2 on
#: anything current) up to the historical 64 MiB static default
_LADDER: Tuple[int, ...] = tuple(1 << p for p in range(20, 27))

#: synthetic probe workload — sized so one full ladder probe stays well
#: under a second on CI-class hardware while still spanning several
#: chunks at the smallest budget
_PROBE_REPORTS = 48_000
_PROBE_CANDIDATES = 64
_PROBE_D_OUT = 16


@dataclass(frozen=True)
class KernelCalibration:
    """The outcome of one timed calibration (or its persisted echo).

    ``probes`` records every ``(chunk_bytes, best_seconds)`` pair the
    ladder measured, so a stored calibration stays auditable.  ``source``
    is ``"measured"`` or ``"stored"``; ``workload`` identifies the probe
    shape the timings came from.
    """

    chunk_bytes: int
    probes: Tuple[Tuple[int, float], ...]
    source: str
    workload: str

    def activate(self) -> Optional[int]:
        """Install this budget process-wide; returns the previous one."""
        return set_active_chunk_bytes(self.chunk_bytes)

    def to_dict(self) -> dict:
        return {
            "chunk_bytes": int(self.chunk_bytes),
            "probes": [
                [int(chunk), float(seconds)] for chunk, seconds in self.probes
            ],
            "source": self.source,
            "workload": self.workload,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "KernelCalibration":
        chunk_bytes = int(payload["chunk_bytes"])
        if chunk_bytes < 1:
            raise ValueError(
                f"persisted chunk_bytes must be >= 1, got {chunk_bytes}"
            )
        return cls(
            chunk_bytes=chunk_bytes,
            probes=tuple(
                (int(chunk), float(seconds))
                for chunk, seconds in payload.get("probes", [])
            ),
            source="stored",
            workload=str(payload.get("workload", "")),
        )


def calibrate_kernel(
    n_reports: int = _PROBE_REPORTS,
    n_candidates: int = _PROBE_CANDIDATES,
    d_out: int = _PROBE_D_OUT,
    ladder: Sequence[int] = _LADDER,
    repeats: int = 2,
    family: Optional[HashFamily] = None,
    seed: int = 0,
) -> KernelCalibration:
    """Time the kernel over a chunk-budget ladder and pick the fastest.

    The probe pins the *standard* (report-major) orientation via an
    explicit plan so every rung measures the same walk, merely re-tiled —
    the quantity ``chunk_bytes`` actually controls.  ``repeats`` takes
    the best-of-N per rung to shed scheduler noise; ties break toward
    the smaller budget (smaller intermediates, same speed).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if not ladder:
        raise ValueError("chunk-budget ladder must not be empty")
    family = family if family is not None else XXHash32Family()
    rng = np.random.default_rng(seed)
    seeds = family.sample_seeds(n_reports, rng)
    reported = rng.integers(0, d_out, size=n_reports, dtype=np.int64)
    candidates = np.arange(n_candidates, dtype=np.int64)

    probes = []
    for chunk_bytes in ladder:
        plan = plan_support_counts(
            n_reports, n_candidates, d_out, chunk_bytes=int(chunk_bytes)
        )
        best = None
        for __ in range(repeats):
            started = time.perf_counter()
            support_counts_kernel(
                family, seeds, reported, candidates, d_out, plan=plan
            )
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        probes.append((int(chunk_bytes), best))

    winner = min(probes, key=lambda probe: (probe[1], probe[0]))
    return KernelCalibration(
        chunk_bytes=winner[0],
        probes=tuple(probes),
        source="measured",
        workload=(
            f"n={n_reports},candidates={n_candidates},d_out={d_out},"
            f"family={family.name}"
        ),
    )


def ensure_calibration(
    store=None, activate: bool = True, **probe_kwargs
) -> KernelCalibration:
    """Load a persisted calibration, else measure one (and persist it).

    ``store`` is any :class:`~repro.persistence.store.StateStore` (its
    advisory tuning bag holds the record under
    :data:`CALIBRATION_TUNING_KEY`); ``None`` measures without
    persisting.  A corrupt stored record is discarded and re-measured
    rather than failing the run — calibration can only cost time.
    """
    if store is not None:
        payload = store.load_tuning(CALIBRATION_TUNING_KEY)
        if payload is not None:
            try:
                calibration = KernelCalibration.from_dict(payload)
            except (KeyError, TypeError, ValueError):
                calibration = None
            if calibration is not None:
                if activate:
                    calibration.activate()
                return calibration
    calibration = calibrate_kernel(**probe_kwargs)
    if store is not None:
        store.record_tuning(CALIBRATION_TUNING_KEY, calibration.to_dict())
    if activate:
        calibration.activate()
    return calibration


def resolve_chunk_bytes(chunk_bytes, store=None) -> Optional[int]:
    """Map a facade/CLI ``chunk_bytes`` value to a concrete budget.

    ``None`` passes through (kernel default / active calibration),
    ``"auto"`` runs :func:`ensure_calibration` against ``store``, and
    anything else must be a positive int — validation of the final value
    is the pipelines' job (named ``ConfigError``).
    """
    if chunk_bytes is None:
        return None
    if isinstance(chunk_bytes, str):
        if chunk_bytes == "auto":
            return ensure_calibration(store=store).chunk_bytes
        chunk_bytes = int(chunk_bytes)  # may raise ValueError; callers map it
    return int(chunk_bytes)
