"""xxHash32: scalar reference implementation plus a vectorized array path.

The paper's prototype uses ``python-xxhash`` seeds (4 bytes) as the random
hash functions of OLH/SOLH.  That package is not available offline, so this
module re-implements the XXH32 algorithm exactly (validated against the
reference test vectors in ``tests/hashing/test_xxhash32.py``).

Two implementations are provided:

* :func:`xxhash32` / :func:`xxhash32_int` — the scalar reference, a direct
  transcription of the canonical specification at
  https://github.com/Cyan4973/xxHash/blob/dev/doc/xxhash_spec.md.  It
  handles arbitrary byte strings and is the ground truth every vectorized
  result is validated against.
* :func:`xxhash32_int_array` — branch-free uint32 lane arithmetic over
  numpy arrays.  The frequency-oracle layer only ever hashes the fixed
  8-byte little-endian encoding of a domain value, and fixed-width 8-byte
  inputs take exactly one path through the spec (the short-input branch:
  ``acc = seed + PRIME5 + 8`` followed by two 4-byte-lane rounds and the
  avalanche), so the whole algorithm collapses to a handful of wrapping
  uint32 array operations that broadcast over ``seeds x values``.
"""

from __future__ import annotations

import numpy as np

_PRIME1 = 0x9E3779B1
_PRIME2 = 0x85EBCA77
_PRIME3 = 0xC2B2AE3D
_PRIME4 = 0x27D4EB2F
_PRIME5 = 0x165667B1

_MASK32 = 0xFFFFFFFF


def _rotl32(value: int, count: int) -> int:
    """Rotate a 32-bit integer left by ``count`` bits."""
    value &= _MASK32
    return ((value << count) | (value >> (32 - count))) & _MASK32


def _round(acc: int, lane: int) -> int:
    """One accumulator round: mix a 32-bit lane into ``acc``."""
    acc = (acc + lane * _PRIME2) & _MASK32
    acc = _rotl32(acc, 13)
    return (acc * _PRIME1) & _MASK32


def _avalanche(acc: int) -> int:
    """Final mixing stage that spreads entropy across all output bits."""
    acc ^= acc >> 15
    acc = (acc * _PRIME2) & _MASK32
    acc ^= acc >> 13
    acc = (acc * _PRIME3) & _MASK32
    acc ^= acc >> 16
    return acc


def xxhash32(data: bytes, seed: int = 0) -> int:
    """Hash ``data`` with 32-bit xxHash using ``seed``.

    Parameters
    ----------
    data:
        The byte string to hash.
    seed:
        A 32-bit unsigned seed selecting the hash function.

    Returns
    -------
    int
        The 32-bit unsigned hash value.
    """
    seed &= _MASK32
    length = len(data)
    index = 0

    if length >= 16:
        acc1 = (seed + _PRIME1 + _PRIME2) & _MASK32
        acc2 = (seed + _PRIME2) & _MASK32
        acc3 = seed
        acc4 = (seed - _PRIME1) & _MASK32
        limit = length - 16
        while index <= limit:
            acc1 = _round(acc1, int.from_bytes(data[index:index + 4], "little"))
            acc2 = _round(acc2, int.from_bytes(data[index + 4:index + 8], "little"))
            acc3 = _round(acc3, int.from_bytes(data[index + 8:index + 12], "little"))
            acc4 = _round(acc4, int.from_bytes(data[index + 12:index + 16], "little"))
            index += 16
        acc = (
            _rotl32(acc1, 1) + _rotl32(acc2, 7) + _rotl32(acc3, 12) + _rotl32(acc4, 18)
        ) & _MASK32
    else:
        acc = (seed + _PRIME5) & _MASK32

    acc = (acc + length) & _MASK32

    while index + 4 <= length:
        lane = int.from_bytes(data[index:index + 4], "little")
        acc = (acc + lane * _PRIME3) & _MASK32
        acc = (_rotl32(acc, 17) * _PRIME4) & _MASK32
        index += 4

    while index < length:
        acc = (acc + data[index] * _PRIME5) & _MASK32
        acc = (_rotl32(acc, 11) * _PRIME1) & _MASK32
        index += 1

    return _avalanche(acc)


def xxhash32_int(value: int, seed: int = 0) -> int:
    """Hash a non-negative integer by its 8-byte little-endian encoding.

    This is the encoding the frequency-oracle layer uses when hashing domain
    values with a seeded xxHash function.
    """
    return xxhash32(int(value).to_bytes(8, "little"), seed)


def _rotl32_np(values: np.ndarray, count: int) -> np.ndarray:
    """Rotate a uint32 array left by ``count`` bits (in place when possible)."""
    return (values << np.uint32(count)) | (values >> np.uint32(32 - count))


def _avalanche_np(acc: np.ndarray) -> np.ndarray:
    """Vectorized final mixing stage, operating on ``acc`` in place."""
    acc ^= acc >> np.uint32(15)
    acc *= np.uint32(_PRIME2)
    acc ^= acc >> np.uint32(13)
    acc *= np.uint32(_PRIME3)
    acc ^= acc >> np.uint32(16)
    return acc


def xxhash32_int_array(values: np.ndarray, seeds: np.ndarray) -> np.ndarray:
    """Vectorized :func:`xxhash32_int`: hash 8-byte encodings of ``values``.

    ``values`` and ``seeds`` are integer arrays (or scalars) that broadcast
    against each other — pass ``seeds[:, None]`` against a 1-D ``values``
    to evaluate the full outer product.  Values must lie in ``[0, 2^64)``
    (the 8-byte encoding's range); seeds wrap modulo ``2^32`` exactly like
    the scalar path.  Returns the uint32 hashes with the broadcast shape,
    bit-for-bit identical to the scalar reference.

    Every intermediate is uint32 (wrapping lane arithmetic), so the peak
    footprint is a small constant number of 4-byte-per-element temporaries.
    """
    values = np.asarray(values)
    if values.size and values.dtype != np.uint64 and int(values.min()) < 0:
        raise ValueError(
            f"value {int(values.min())} outside [0, 2^64): xxHash32 hashes "
            f"the 8-byte little-endian encoding"
        )
    values = values.astype(np.uint64, copy=False)
    seeds = np.asarray(seeds)
    with np.errstate(over="ignore"):
        seeds32 = (seeds.astype(np.uint64, copy=False) & np.uint64(_MASK32)).astype(
            np.uint32
        )
        # 8-byte little-endian encoding = two 4-byte lanes; premultiply by
        # the lane prime so the loop body is pure add/rotate/multiply.
        lane_lo = (values & np.uint64(_MASK32)).astype(np.uint32) * np.uint32(_PRIME3)
        lane_hi = (values >> np.uint64(32)).astype(np.uint32) * np.uint32(_PRIME3)
        # Short-input branch for length 8: acc = seed + PRIME5, then += len.
        acc = seeds32 + np.uint32((_PRIME5 + 8) & _MASK32)
        shape = np.broadcast_shapes(np.shape(acc), lane_lo.shape)
        acc = np.broadcast_to(acc, shape).copy()
        acc += lane_lo
        acc = _rotl32_np(acc, 17)
        acc *= np.uint32(_PRIME4)
        acc += lane_hi
        acc = _rotl32_np(acc, 17)
        acc *= np.uint32(_PRIME4)
        return _avalanche_np(acc)
