"""Pure-Python implementation of the xxHash32 non-cryptographic hash.

The paper's prototype uses ``python-xxhash`` seeds (4 bytes) as the random
hash functions of OLH/SOLH.  That package is not available offline, so this
module re-implements the XXH32 algorithm exactly (validated against the
reference test vectors in ``tests/hashing/test_xxhash32.py``).

The implementation follows the canonical specification at
https://github.com/Cyan4973/xxHash/blob/dev/doc/xxhash_spec.md.
"""

from __future__ import annotations

_PRIME1 = 0x9E3779B1
_PRIME2 = 0x85EBCA77
_PRIME3 = 0xC2B2AE3D
_PRIME4 = 0x27D4EB2F
_PRIME5 = 0x165667B1

_MASK32 = 0xFFFFFFFF


def _rotl32(value: int, count: int) -> int:
    """Rotate a 32-bit integer left by ``count`` bits."""
    value &= _MASK32
    return ((value << count) | (value >> (32 - count))) & _MASK32


def _round(acc: int, lane: int) -> int:
    """One accumulator round: mix a 32-bit lane into ``acc``."""
    acc = (acc + lane * _PRIME2) & _MASK32
    acc = _rotl32(acc, 13)
    return (acc * _PRIME1) & _MASK32


def _avalanche(acc: int) -> int:
    """Final mixing stage that spreads entropy across all output bits."""
    acc ^= acc >> 15
    acc = (acc * _PRIME2) & _MASK32
    acc ^= acc >> 13
    acc = (acc * _PRIME3) & _MASK32
    acc ^= acc >> 16
    return acc


def xxhash32(data: bytes, seed: int = 0) -> int:
    """Hash ``data`` with 32-bit xxHash using ``seed``.

    Parameters
    ----------
    data:
        The byte string to hash.
    seed:
        A 32-bit unsigned seed selecting the hash function.

    Returns
    -------
    int
        The 32-bit unsigned hash value.
    """
    seed &= _MASK32
    length = len(data)
    index = 0

    if length >= 16:
        acc1 = (seed + _PRIME1 + _PRIME2) & _MASK32
        acc2 = (seed + _PRIME2) & _MASK32
        acc3 = seed
        acc4 = (seed - _PRIME1) & _MASK32
        limit = length - 16
        while index <= limit:
            acc1 = _round(acc1, int.from_bytes(data[index:index + 4], "little"))
            acc2 = _round(acc2, int.from_bytes(data[index + 4:index + 8], "little"))
            acc3 = _round(acc3, int.from_bytes(data[index + 8:index + 12], "little"))
            acc4 = _round(acc4, int.from_bytes(data[index + 12:index + 16], "little"))
            index += 16
        acc = (
            _rotl32(acc1, 1) + _rotl32(acc2, 7) + _rotl32(acc3, 12) + _rotl32(acc4, 18)
        ) & _MASK32
    else:
        acc = (seed + _PRIME5) & _MASK32

    acc = (acc + length) & _MASK32

    while index + 4 <= length:
        lane = int.from_bytes(data[index:index + 4], "little")
        acc = (acc + lane * _PRIME3) & _MASK32
        acc = (_rotl32(acc, 17) * _PRIME4) & _MASK32
        index += 4

    while index < length:
        acc = (acc + data[index] * _PRIME5) & _MASK32
        acc = (_rotl32(acc, 11) * _PRIME1) & _MASK32
        index += 1

    return _avalanche(acc)


def xxhash32_int(value: int, seed: int = 0) -> int:
    """Hash a non-negative integer by its 8-byte little-endian encoding.

    This is the encoding the frequency-oracle layer uses when hashing domain
    values with a seeded xxHash function.
    """
    return xxhash32(int(value).to_bytes(8, "little"), seed)
