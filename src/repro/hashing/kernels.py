"""Low-allocation support-count kernels — the O(n*d) decode hot path.

Server-side OLH/SOLH aggregation evaluates every report's hash function on
every candidate value and counts the matches: ``counts[v] = #{i :
H_{seed_i}(v) == y_i}``.  The naive formulation materializes an int64
``(chunk, d)`` hash matrix plus a same-shaped boolean mask per chunk and
reduces the mask — 9 bytes of intermediate per hash.  This module is the
single shared implementation every consumer (the local-hashing oracles,
the incremental aggregator's materialized fold path, the sharded
pipeline's process folds, and through them the sweep engine and the PEOS
protocol decode) routes through, built around three ideas:

* **uint32 intermediates.**  Hashed values live in ``[0, d')`` with ``d'``
  far below ``2^32``, so chunks are produced in uint32 via
  :meth:`~repro.hashing.families.HashFamily.hash_outer_u32` and compared
  by an in-place XOR against the reported values — no int64 matrix, no
  second matrix-shaped allocation for the comparison.
* **bincount accumulation.**  Matches are expected to be sparse (one per
  ``d'`` hashes), so the kernel gathers the match positions with
  ``flatnonzero`` and folds them into the counts with ``np.bincount``
  instead of reducing a ``(chunk, d)`` boolean matrix along axis 0.
* **chunk orientation.**  The chunk walks whichever axis keeps a full
  stripe of the other within ``chunk_bytes``: report-major when a full
  candidate row fits (the common case), candidate-major when the candidate
  axis is so wide that even one report row would blow the budget.

On top sits a **unique-seed fast path** for small seed spaces (the paper's
4-byte xxHash32 prototype): reports are grouped by seed, each distinct
hash function's candidate row is evaluated exactly once, and the match
indicator is replaced by a table lookup of per-``(seed, y)`` report
multiplicities.  With ``u`` distinct seeds the hash work drops from
``O(n*d)`` to ``O(u*d)`` — a large win exactly where the 32-bit seed space
forces collisions (``n`` within an order of magnitude of ``2^32``, or any
workload that re-aggregates a retained report set).

Every path produces **bit-identical** counts: hashing is deterministic,
matches are counted in exact integer arithmetic, and integer sums are
associative — so chunk size, orientation, and the unique-seed grouping
cannot change a single count, only the time and memory spent producing
them.  ``tests/hashing/test_kernels.py`` pins this against a naive
materialized reference.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from .families import HashFamily

__all__ = [
    "KernelPlan",
    "SeedRowCache",
    "active_chunk_bytes",
    "chunk_spans",
    "plan_support_counts",
    "set_active_chunk_bytes",
    "support_counts_kernel",
]

#: default per-chunk intermediate budget (matches the oracles' default)
DEFAULT_CHUNK_BYTES = 1 << 26

#: process-wide calibrated ``chunk_bytes`` override (None = uncalibrated).
#: Lives here rather than in :mod:`repro.hashing.calibrate` so the kernel
#: never imports the calibration layer (which imports the kernel).
_ACTIVE_CHUNK_BYTES: Optional[int] = None


def set_active_chunk_bytes(chunk_bytes: Optional[int]) -> Optional[int]:
    """Install (or with ``None`` clear) the calibrated chunk budget.

    Returns the previous override so callers can restore it (tests, and
    :meth:`repro.hashing.calibrate.KernelCalibration.activate`).  Purely
    an execution knob: counts are bit-identical at any value.
    """
    global _ACTIVE_CHUNK_BYTES
    previous = _ACTIVE_CHUNK_BYTES
    if chunk_bytes is not None and int(chunk_bytes) < 1:
        raise ValueError(f"chunk_bytes must be >= 1, got {chunk_bytes}")
    _ACTIVE_CHUNK_BYTES = None if chunk_bytes is None else int(chunk_bytes)
    return previous


def active_chunk_bytes() -> int:
    """The chunk budget an unpinned kernel call uses right now."""
    return (
        DEFAULT_CHUNK_BYTES
        if _ACTIVE_CHUNK_BYTES is None
        else _ACTIVE_CHUNK_BYTES
    )

#: bytes of matrix-shaped intermediates per hash on the standard path:
#: the uint32 chunk (4) plus the match mask ``flatnonzero`` scans (1)
_STANDARD_BYTES_PER_HASH = 5

#: bytes per hash on the unique-seed path: the uint32 chunk (4, reused
#: directly as gather indices) and the int64 multiplicity gather result (8)
_UNIQUE_BYTES_PER_HASH = 12

#: largest seed space eligible for unique-seed grouping; grouping first
#: requires a sort of the seeds, which only pays off when the space is
#: small enough for duplicates to be plausible at all
_UNIQUE_SEED_SPACE = 1 << 32

#: maximum distinct-to-total seed ratio for grouping: the unique path
#: engages when ``n_unique <= 0.75 * n``, i.e. at least a quarter of the
#: reports share a seed with another report
_UNIQUE_RATIO = 0.75

#: report counts up to this always probe for duplicate seeds (the sort is
#: negligible); above it, probing requires a wide candidate axis or the
#: birthday regime — see ``_grouping_plausible``
_UNIQUE_PROBE_LIMIT = 1 << 16

#: candidate counts from which the duplicate probe is always worthwhile:
#: the O(n log n) sort costs roughly ``1/d`` of the O(n*d) hash work it
#: can replace, so for wide domains it is cheap insurance
_UNIQUE_PROBE_MIN_CANDIDATES = 64


def chunk_spans(total: int, chunk: int) -> Iterator[Tuple[int, int]]:
    """Yield ``[start, stop)`` spans covering ``range(total)`` in chunks.

    The shared chunking idiom of every O(n*d) path in the library (support
    counting here, subset-selection sampling in
    :mod:`repro.frequency_oracles.subset`).  ``chunk`` is clamped to at
    least 1 so a degenerate byte budget degrades to row-at-a-time instead
    of raising.
    """
    chunk = max(1, int(chunk))
    for start in range(0, total, chunk):
        yield start, min(start + chunk, total)


@dataclass(frozen=True)
class KernelPlan:
    """How one support-count invocation will walk the hash matrix.

    ``orientation`` is ``"reports"`` (chunk the report axis, full candidate
    rows), ``"candidates"`` (chunk the candidate axis, full report
    columns), or ``"unique"`` (the unique-seed fast path, chunking distinct
    seeds).  ``chunk`` is the number of rows (or columns) per step and
    ``peak_intermediate_bytes`` the worst-case matrix-shaped allocation the
    walk materializes at once — the number the throughput benchmark
    records.
    """

    orientation: str
    chunk: int
    n_reports: int
    n_candidates: int
    n_unique: Optional[int]
    peak_intermediate_bytes: int

    @property
    def hashes_evaluated(self) -> int:
        """Total hash evaluations the plan performs."""
        rows = self.n_unique if self.orientation == "unique" else self.n_reports
        return rows * self.n_candidates


def plan_support_counts(
    n_reports: int,
    n_candidates: int,
    d_out: int,
    chunk_bytes: Optional[int] = None,
    n_unique: Optional[int] = None,
    prefer_unique: bool = False,
) -> KernelPlan:
    """Choose orientation and chunk size for a support-count workload.

    ``chunk_bytes=None`` resolves to the process-wide calibrated budget
    (:func:`active_chunk_bytes`) — the default every oracle passes unless
    the deployment pinned an explicit value.

    ``n_unique`` (the distinct-seed count, when the caller has it) enables
    the unique-seed path exactly when grouping is profitable: the seed
    space is small, at least a quarter of the reports share a seed with
    another report, and the per-``(seed, y)`` multiplicity table fits the
    byte budget.  ``prefer_unique`` drops the duplicate-ratio requirement
    (the table-fit requirement stays): a caller holding a
    :class:`SeedRowCache` wants the unique path even for all-distinct
    seeds, because the rows it hashes this flush are the hits of the
    next.  The returned plan is purely an execution choice — every plan
    computes identical counts.
    """
    if chunk_bytes is None:
        chunk_bytes = active_chunk_bytes()
    if (
        n_unique is not None
        and n_reports > 0
        and (prefer_unique or n_unique <= _UNIQUE_RATIO * n_reports)
        and n_unique * max(1, d_out) * 8 <= chunk_bytes
    ):
        chunk = max(1, chunk_bytes // (_UNIQUE_BYTES_PER_HASH * max(1, n_candidates)))
        chunk = min(chunk, max(1, n_unique))
        return KernelPlan(
            orientation="unique",
            chunk=chunk,
            n_reports=n_reports,
            n_candidates=n_candidates,
            n_unique=n_unique,
            peak_intermediate_bytes=(
                _UNIQUE_BYTES_PER_HASH * chunk * n_candidates
                + n_unique * max(1, d_out) * 8
            ),
        )
    row_bytes = _STANDARD_BYTES_PER_HASH * max(1, n_candidates)
    if row_bytes <= chunk_bytes or n_reports <= 1:
        chunk = max(1, min(chunk_bytes // row_bytes, max(1, n_reports)))
        return KernelPlan(
            orientation="reports",
            chunk=chunk,
            n_reports=n_reports,
            n_candidates=n_candidates,
            n_unique=n_unique,
            peak_intermediate_bytes=_STANDARD_BYTES_PER_HASH
            * chunk
            * max(1, n_candidates),
        )
    # The candidate axis is so wide even one report row busts the budget:
    # walk candidate stripes against the full report column instead.
    col_bytes = _STANDARD_BYTES_PER_HASH * max(1, n_reports)
    chunk = max(1, min(chunk_bytes // col_bytes, max(1, n_candidates)))
    return KernelPlan(
        orientation="candidates",
        chunk=chunk,
        n_reports=n_reports,
        n_candidates=n_candidates,
        n_unique=n_unique,
        peak_intermediate_bytes=_STANDARD_BYTES_PER_HASH
        * chunk
        * max(1, n_reports),
    )


class SeedRowCache:
    """Cross-flush LRU cache of hash rows for the unique-seed path.

    One entry per distinct seed: the uint32 row ``H_seed(candidates)``
    the unique-seed fast path evaluates.  In the 32-bit seed space a
    seed drawn this flush recurs in later flushes (the birthday regime)
    and *every* seed recurs when a retained report set is re-aggregated
    — in both cases the cached row replaces an O(d) hash evaluation with
    a copy.

    Soundness rests on two invariants:

    * **Identity-keyed.**  A row is only valid for the exact
      ``(family type, family name, seed space, d_out, candidate count)``
      it was computed under; :meth:`ensure` drops everything on any
      change, so a cache can never serve rows across hash families or
      domain sizes.  Callers additionally guarantee the candidate
      *values* are fixed given the identity (the oracles pass the cache
      only for the default full-domain ``arange(d)`` candidates).
    * **Read-only rows.**  Cached rows feed the unique path's gather,
      which never mutates its hash chunk — the standard path's in-place
      XOR (:func:`_match_columns`) must not and does not see them.

    Rows are stored as owned copies and served as fresh matrices, so the
    cache is bit-transparent: hashing is deterministic, hence a hit is
    byte-for-byte the row a miss would recompute.  Eviction is LRU under
    ``byte_budget``; a budget smaller than one row disables insertion
    (the cache degrades to a pass-through, never an error).
    """

    def __init__(self, byte_budget: int):
        byte_budget = int(byte_budget)
        if byte_budget < 1:
            raise ValueError(f"byte budget must be >= 1, got {byte_budget}")
        self.byte_budget = byte_budget
        self._rows: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._identity: Optional[tuple] = None
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.resets = 0

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def nbytes(self) -> int:
        """Bytes of cached row payload currently held."""
        return self._bytes

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def cached_seeds(self) -> tuple:
        """The cached seeds in LRU order (oldest first) — test hook."""
        return tuple(self._rows)

    def ensure(self, family: HashFamily, d_out: int, n_candidates: int) -> None:
        """Bind the cache to one workload identity, invalidating on change."""
        identity = (
            type(family).__name__,
            family.name,
            int(family.seed_space),
            int(d_out),
            int(n_candidates),
        )
        if identity != self._identity:
            if self._identity is not None and self._rows:
                self.resets += 1
            self._rows.clear()
            self._bytes = 0
            self._identity = identity

    def rows(
        self,
        family: HashFamily,
        seeds: np.ndarray,
        candidates: np.ndarray,
        d_out: int,
    ) -> np.ndarray:
        """The ``(len(seeds), len(candidates))`` uint32 hash matrix.

        Hit rows are copied out of the cache; miss rows are computed in
        one vectorized :func:`_chunk_hashes` call, served, and inserted
        (then LRU-evicted down to budget).  Caller must have called
        :meth:`ensure` for this workload first.
        """
        n_candidates = len(candidates)
        out = np.empty((len(seeds), n_candidates), dtype=np.uint32)
        miss_positions = []
        for position, seed in enumerate(seeds):
            seed = int(seed)
            row = self._rows.get(seed)
            if row is None:
                miss_positions.append(position)
            else:
                self._rows.move_to_end(seed)
                out[position] = row
                self.hits += 1
        if miss_positions:
            self.misses += len(miss_positions)
            miss_index = np.asarray(miss_positions, dtype=np.intp)
            computed = _chunk_hashes(
                family, seeds[miss_index], candidates, d_out
            ).astype(np.uint32, copy=False)
            out[miss_index] = computed
            row_bytes = computed.dtype.itemsize * max(1, n_candidates)
            if row_bytes <= self.byte_budget:
                for offset, position in enumerate(miss_positions):
                    self._rows[int(seeds[position])] = computed[offset].copy()
                    self._bytes += row_bytes
                while self._bytes > self.byte_budget and self._rows:
                    self._rows.popitem(last=False)
                    self._bytes -= row_bytes
                    self.evictions += 1
        return out


def _grouping_plausible(
    family: HashFamily, n_reports: int, n_candidates: int
) -> bool:
    """Whether probing for duplicate seeds (a full sort) can pay off.

    The probe costs an ``O(n log n)`` sort against the ``O(n*d)`` hash
    work grouping could replace, so it runs whenever any of these holds:

    * the report set is small (``_UNIQUE_PROBE_LIMIT``) — the sort is
      negligible outright;
    * the candidate axis is wide (``_UNIQUE_PROBE_MIN_CANDIDATES``) —
      the sort is a ~``1/d`` overhead, cheap insurance for the
      duplicate-heavy workloads (re-aggregated retained report sets)
      where grouping is the advertised O(u*d) win;
    * uniform seeds are in the birthday regime (``n >= seed_space / 2``,
      where their expected duplicate fraction reaches the ~25% the
      ``_UNIQUE_RATIO`` gate needs).

    Outside those, sorting millions of almost-certainly-distinct seeds
    over a narrow domain would cost a measurable slice of the kernel
    call with no realistic chance of engaging the fast path.
    """
    if family.seed_space > _UNIQUE_SEED_SPACE or n_reports <= 1:
        return False
    return (
        n_reports <= _UNIQUE_PROBE_LIMIT
        or n_candidates >= _UNIQUE_PROBE_MIN_CANDIDATES
        or 2 * n_reports >= family.seed_space
    )


def _chunk_hashes(
    family: HashFamily, seeds: np.ndarray, candidates: np.ndarray, d_out: int
) -> np.ndarray:
    """One hash chunk in the kernel's compare dtype.

    uint32 whenever the report domain allows it; the (never exercised by
    the built-in oracles) ``d_out > 2^32`` case falls back to the int64
    path so reported values outside uint32 still compare exactly.
    """
    if d_out <= _UNIQUE_SEED_SPACE:
        return family.hash_outer_u32(seeds, candidates, d_out)
    return family.hash_outer(seeds, candidates, d_out)


def _match_columns(hashes: np.ndarray, reported: np.ndarray) -> np.ndarray:
    """Column indices of every ``hashes[i, j] == reported[i]`` match.

    XORs the reported values into the chunk **in place** (the chunk is
    owned by the caller and never reused), then reads off the zero
    positions: one 1-byte mask and one sparse index array instead of a
    full-matrix reduction.
    """
    hashes ^= reported[:, None]
    matches = np.flatnonzero(hashes.ravel() == 0)
    if matches.size:
        matches %= hashes.shape[1]
    return matches


def support_counts_kernel(
    family: HashFamily,
    seeds: np.ndarray,
    reported: np.ndarray,
    candidates: np.ndarray,
    d_out: int,
    chunk_bytes: Optional[int] = None,
    plan: Optional[KernelPlan] = None,
    seed_cache: Optional[SeedRowCache] = None,
) -> np.ndarray:
    """Count, per candidate, the reports whose hash of it matches.

    Parameters mirror the local-hashing decode: ``seeds[i]`` identifies
    report ``i``'s hash function, ``reported[i]`` its (perturbed) hashed
    value in ``[0, d_out)``, and ``candidates`` the domain values to score.
    Returns an int64 count vector aligned with ``candidates`` —
    bit-identical for any ``chunk_bytes``, with or without a cache, and
    on every execution path.  ``chunk_bytes=None`` means the calibrated
    process-wide budget (:func:`active_chunk_bytes`).

    ``seed_cache`` serves/collects per-seed hash rows across calls; it
    only engages on the unique-seed path (whose gather never mutates its
    hash chunk) for uint32-comparable domains, and it steers planning
    toward that path (``prefer_unique``) so first-sight seeds populate
    rows for later flushes.  The caller owns keeping the candidate set
    fixed per cache (see :class:`SeedRowCache`).

    ``plan`` overrides the automatic :func:`plan_support_counts` choice
    (used by tests to force an orientation; the unique-seed path can only
    be *disabled* this way, since a plan without ``n_unique`` falls back
    to the standard walk).
    """
    seeds = np.asarray(seeds, dtype=np.uint64)
    reported = np.asarray(reported)
    candidates = np.asarray(candidates)
    n = len(seeds)
    n_candidates = len(candidates)
    counts = np.zeros(n_candidates, dtype=np.int64)
    if n == 0 or n_candidates == 0:
        return counts

    use_cache = (
        seed_cache is not None
        and plan is None
        and family.seed_space <= _UNIQUE_SEED_SPACE
        and d_out <= _UNIQUE_SEED_SPACE
    )
    unique_seeds = inverse = None
    if plan is None:
        n_unique = None
        if use_cache or _grouping_plausible(family, n, n_candidates):
            unique_seeds, inverse = np.unique(seeds, return_inverse=True)
            n_unique = len(unique_seeds)
        plan = plan_support_counts(
            n, n_candidates, d_out, chunk_bytes, n_unique=n_unique,
            prefer_unique=use_cache,
        )

    compare_dtype = np.uint32 if d_out <= _UNIQUE_SEED_SPACE else np.int64
    reported_cmp = reported.astype(compare_dtype, copy=False)

    if plan.orientation == "unique" and unique_seeds is not None:
        cache = seed_cache if use_cache else None
        if cache is not None:
            cache.ensure(family, d_out, n_candidates)
        # Multiplicity table: weights[s, y] = #reports with (seed s, value y).
        weights = np.bincount(
            inverse.reshape(-1).astype(np.int64) * d_out
            + reported.astype(np.int64),
            minlength=plan.n_unique * d_out,
        ).reshape(plan.n_unique, d_out)
        for start, stop in chunk_spans(plan.n_unique, plan.chunk):
            # The uint32 chunk doubles as the gather index — no int64 copy.
            if cache is not None:
                hashes = cache.rows(
                    family, unique_seeds[start:stop], candidates, d_out
                )
            else:
                hashes = _chunk_hashes(
                    family, unique_seeds[start:stop], candidates, d_out
                )
            counts += np.take_along_axis(
                weights[start:stop], hashes, axis=1
            ).sum(axis=0)
        return counts

    if plan.orientation == "candidates":
        for start, stop in chunk_spans(n_candidates, plan.chunk):
            hashes = _chunk_hashes(family, seeds, candidates[start:stop], d_out)
            matches = _match_columns(hashes, reported_cmp)
            counts[start:stop] += np.bincount(matches, minlength=stop - start)
        return counts

    for start, stop in chunk_spans(n, plan.chunk):
        hashes = _chunk_hashes(family, seeds[start:stop], candidates, d_out)
        matches = _match_columns(hashes, reported_cmp[start:stop])
        counts += np.bincount(matches, minlength=n_candidates)
    return counts
