"""Seeded universal hash families used by local-hashing frequency oracles.

OLH/SOLH require every user to draw a random function ``H`` from a universal
family mapping the value domain ``[d]`` into a report domain ``[d_out]``.
The server later has to evaluate ``H_i(v)`` for *every* user ``i`` and *every*
candidate value ``v`` (an ``O(n * d)`` workload), so each family exposes both
a scalar API and chunk-vectorized numpy APIs.

Three families are provided:

* :class:`CarterWegmanHashFamily` — the classic 2-universal family
  ``h(v) = ((a*v + b) mod p) mod d_out`` with the Mersenne prime
  ``p = 2^31 - 1``.  2-universality is what the SOLH analysis assumes, and
  the Mersenne modulus makes the family evaluable with pure 64-bit numpy
  arithmetic.  This is the default.
* :class:`XXHash32Family` — seeded xxHash32, matching the paper's prototype
  (4-byte seeds).  Every chunk path runs the branch-free vectorized lane
  arithmetic of :func:`repro.hashing.xxhash32.xxhash32_int_array`
  (bit-identical to the scalar reference), so the paper's own family is
  usable at paper scale.
* :class:`MultiplyShiftHashFamily` — a fast splitmix-style mixer; not
  provably universal but empirically well distributed, included for
  ablations on the family choice.

A *seed* is a single 64-bit integer; it fully determines the hash function,
which makes reports compact (seed + hashed value) exactly as in the paper.

The ``O(n * d)`` support-count workload itself lives in
:mod:`repro.hashing.kernels`, which drives the families through
:meth:`HashFamily.hash_outer_u32` — the uint32 chunk format that keeps the
decode hot path's intermediates at 4 bytes per hash.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence, Union

import numpy as np

from .xxhash32 import xxhash32_int, xxhash32_int_array

_MERSENNE31 = (1 << 31) - 1
_MASK64 = (1 << 64) - 1

ArrayLike = Union[Sequence[int], np.ndarray]


def splitmix64(value: int) -> int:
    """One step of the splitmix64 mixer (public-domain constants).

    Used to expand a 64-bit seed into the per-function parameters of the
    Carter-Wegman and multiply-shift families.
    """
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def _splitmix64_np(values: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 over a uint64 array."""
    with np.errstate(over="ignore"):
        values = values + np.uint64(0x9E3779B97F4A7C15)
        values = (values ^ (values >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        values = (values ^ (values >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return values ^ (values >> np.uint64(31))


def _mod_mersenne31(values: np.ndarray) -> np.ndarray:
    """Reduce a uint64 array modulo the Mersenne prime ``2^31 - 1``.

    Valid for inputs below ``2^62``; two folding rounds plus a conditional
    subtraction give an exact reduction without 128-bit arithmetic.
    """
    prime = np.uint64(_MERSENNE31)
    values = (values >> np.uint64(31)) + (values & prime)
    values = (values >> np.uint64(31)) + (values & prime)
    return np.where(values >= prime, values - prime, values)


def _mod_d_out_u32(hashes: np.ndarray, d_out: int) -> np.ndarray:
    """Reduce uint32 hashes into ``[0, d_out)`` without leaving uint32.

    For ``d_out >= 2^32`` the reduction is the identity (hashes are already
    below ``d_out``), which sidesteps an impossible uint32 modulus.
    """
    if d_out < (1 << 32):
        return hashes % np.uint32(d_out)
    return hashes


class HashFamily(ABC):
    """A seeded family of hash functions ``[domain] -> [d_out]``.

    Subclasses must be deterministic: the same ``(seed, value, d_out)``
    triple always produces the same output, across processes.  That property
    is what lets the server re-evaluate users' hash functions.
    """

    #: short name used in logs, reports, and benchmark tables
    name: str = "abstract"

    #: number of distinct seeds (the family size ``h`` in the paper's proof)
    seed_space: int = 1 << 64

    def sample_seed(self, rng: np.random.Generator) -> int:
        """Draw a uniform seed identifying one function of the family."""
        return int(rng.integers(0, self.seed_space, dtype=np.uint64))

    def sample_seeds(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` independent uniform seeds as a uint64 array."""
        return rng.integers(0, self.seed_space, size=count, dtype=np.uint64)

    @abstractmethod
    def hash_value(self, seed: int, value: int, d_out: int) -> int:
        """Evaluate the function identified by ``seed`` on one value."""

    @abstractmethod
    def hash_values(self, seed: int, values: ArrayLike, d_out: int) -> np.ndarray:
        """Evaluate one function on an array of values (one user, many values)."""

    @abstractmethod
    def hash_outer(
        self, seeds: np.ndarray, values: ArrayLike, d_out: int
    ) -> np.ndarray:
        """Evaluate ``seeds[i]`` on ``values[j]`` for all pairs.

        Returns an ``(len(seeds), len(values))`` integer matrix.  This is the
        server-side aggregation hot path; implementations should stay within
        vectorized numpy where possible.
        """

    def hash_outer_u32(
        self, seeds: np.ndarray, values: ArrayLike, d_out: int
    ) -> np.ndarray:
        """:meth:`hash_outer`, delivered as a uint32 matrix.

        This is the chunk format of the support-count kernel
        (:mod:`repro.hashing.kernels`): hashed values live in ``[0, d_out)``
        with ``d_out`` far below ``2^32`` in every paper workload, so uint32
        storage halves the hot path's peak intermediate bytes relative to
        int64.  Only valid for ``d_out <= 2^32`` (the kernel checks and
        falls back to :meth:`hash_outer` otherwise).  The default converts
        the int64 matrix; the built-in families override with native uint32
        pipelines that never materialize an int64 intermediate of matrix
        shape.
        """
        return self.hash_outer(seeds, values, d_out).astype(np.uint32)

    def hash_pairwise(
        self, seeds: np.ndarray, values: ArrayLike, d_out: int
    ) -> np.ndarray:
        """Evaluate ``seeds[i]`` on ``values[i]`` element-wise.

        Used on the user side: each user hashes their own value with their
        own seed.  The default implementation is a scalar fallback — one
        ``hash_value`` call per element — kept deliberately simple because
        every built-in family overrides it with an O(n) vector path.
        """
        seeds = np.asarray(seeds, dtype=np.uint64)
        values = np.asarray(values)
        out = np.empty(len(seeds), dtype=np.int64)
        for i in range(len(seeds)):
            out[i] = self.hash_value(int(seeds[i]), int(values[i]), d_out)
        return out


class CarterWegmanHashFamily(HashFamily):
    """2-universal family ``h_{a,b}(v) = ((a v + b) mod p) mod d_out``.

    ``p = 2^31 - 1``; the pair ``(a, b)`` is derived from the 64-bit seed by
    two splitmix64 steps, with ``a`` forced nonzero.  Domain values must be
    below ``p`` (about 2.1e9), which covers every workload in the paper;
    every evaluation path — scalar and vectorized alike — validates the
    domain, so an out-of-range value raises instead of silently aliasing
    ``v mod p``.
    """

    name = "carter-wegman"

    @staticmethod
    def _check_domain(values: ArrayLike) -> np.ndarray:
        """Validate ``0 <= v < p`` and return the values as uint64.

        One shared gate for all four evaluation paths: the scalar path used
        to reject out-of-range values while the vectorized paths silently
        wrapped them, so the same input could hash differently depending on
        which API the caller reached.
        """
        values = np.asarray(values)
        if values.size:
            low, high = int(values.min()), int(values.max())
            if low < 0 or high >= _MERSENNE31:
                bad = low if low < 0 else high
                raise ValueError(f"value {bad} outside [0, 2^31-1)")
        return values.astype(np.uint64, copy=False)

    def _params(self, seed: int) -> tuple[int, int]:
        a = splitmix64(seed) % (_MERSENNE31 - 1) + 1
        b = splitmix64(seed ^ 0xD1B54A32D192ED03) % _MERSENNE31
        return a, b

    def _params_np(self, seeds: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        seeds = np.asarray(seeds, dtype=np.uint64)
        a = _splitmix64_np(seeds) % np.uint64(_MERSENNE31 - 1) + np.uint64(1)
        b = _splitmix64_np(seeds ^ np.uint64(0xD1B54A32D192ED03)) % np.uint64(
            _MERSENNE31
        )
        return a, b

    def hash_value(self, seed: int, value: int, d_out: int) -> int:
        if not 0 <= value < _MERSENNE31:
            raise ValueError(f"value {value} outside [0, 2^31-1)")
        a, b = self._params(seed)
        return ((a * value + b) % _MERSENNE31) % d_out

    def hash_values(self, seed: int, values: ArrayLike, d_out: int) -> np.ndarray:
        a, b = self._params(seed)
        values = self._check_domain(values)
        with np.errstate(over="ignore"):
            mixed = values * np.uint64(a) + np.uint64(b)
        return (_mod_mersenne31(mixed) % np.uint64(d_out)).astype(np.int64)

    def hash_outer(
        self, seeds: np.ndarray, values: ArrayLike, d_out: int
    ) -> np.ndarray:
        return self.hash_outer_u32(seeds, values, d_out).astype(np.int64)

    def hash_outer_u32(
        self, seeds: np.ndarray, values: ArrayLike, d_out: int
    ) -> np.ndarray:
        a, b = self._params_np(seeds)
        values = self._check_domain(values)
        with np.errstate(over="ignore"):
            mixed = a[:, None] * values[None, :] + b[:, None]
        # Outputs are below p < 2^31, so the uint32 narrowing is lossless
        # regardless of d_out.
        return (_mod_mersenne31(mixed) % np.uint64(d_out)).astype(np.uint32)

    def hash_pairwise(
        self, seeds: np.ndarray, values: ArrayLike, d_out: int
    ) -> np.ndarray:
        a, b = self._params_np(seeds)
        values = self._check_domain(values)
        with np.errstate(over="ignore"):
            mixed = a * values + b
        return (_mod_mersenne31(mixed) % np.uint64(d_out)).astype(np.int64)


class MultiplyShiftHashFamily(HashFamily):
    """Splitmix-style mixing family: fast, not provably universal.

    ``h(v) = splitmix64(v * C xor seed) mod d_out``.  Included to ablate the
    effect of the family choice on SOLH accuracy.
    """

    name = "multiply-shift"

    _C = 0x9E3779B97F4A7C15

    def hash_value(self, seed: int, value: int, d_out: int) -> int:
        mixed = splitmix64((value * self._C ^ seed) & _MASK64)
        return mixed % d_out

    def hash_values(self, seed: int, values: ArrayLike, d_out: int) -> np.ndarray:
        values = np.asarray(values, dtype=np.uint64)
        with np.errstate(over="ignore"):
            mixed = _splitmix64_np(values * np.uint64(self._C) ^ np.uint64(seed))
        return (mixed % np.uint64(d_out)).astype(np.int64)

    def _mixed_outer(self, seeds: np.ndarray, values: ArrayLike) -> np.ndarray:
        """The outer mixing matrix — the single copy of the mixer math."""
        seeds = np.asarray(seeds, dtype=np.uint64)
        values = np.asarray(values, dtype=np.uint64)
        with np.errstate(over="ignore"):
            return _splitmix64_np(
                values[None, :] * np.uint64(self._C) ^ seeds[:, None]
            )

    def hash_outer(
        self, seeds: np.ndarray, values: ArrayLike, d_out: int
    ) -> np.ndarray:
        return (self._mixed_outer(seeds, values) % np.uint64(d_out)).astype(
            np.int64
        )

    def hash_outer_u32(
        self, seeds: np.ndarray, values: ArrayLike, d_out: int
    ) -> np.ndarray:
        return (self._mixed_outer(seeds, values) % np.uint64(d_out)).astype(
            np.uint32
        )

    def hash_pairwise(
        self, seeds: np.ndarray, values: ArrayLike, d_out: int
    ) -> np.ndarray:
        seeds = np.asarray(seeds, dtype=np.uint64)
        values = np.asarray(values, dtype=np.uint64)
        with np.errstate(over="ignore"):
            mixed = _splitmix64_np(values * np.uint64(self._C) ^ seeds)
        return (mixed % np.uint64(d_out)).astype(np.int64)


class XXHash32Family(HashFamily):
    """Seeded xxHash32 family matching the paper's prototype.

    Seeds are 32-bit (4 bytes in each report, as in Section VII-D).  Every
    array path — ``hash_values``, ``hash_outer``, ``hash_pairwise`` and the
    kernel-facing ``hash_outer_u32`` — runs the branch-free vectorized lane
    arithmetic of :func:`repro.hashing.xxhash32.xxhash32_int_array`, which
    is validated bit-for-bit against the scalar reference implementation
    (``hash_value`` still evaluates it, as the per-element ground truth).
    Server-side aggregation with this family is therefore pure numpy; see
    ``benchmarks/bench_hash_throughput.py`` for the measured throughput.
    """

    name = "xxhash32"
    seed_space = 1 << 32

    def hash_value(self, seed: int, value: int, d_out: int) -> int:
        return xxhash32_int(value, seed) % d_out

    def hash_values(self, seed: int, values: ArrayLike, d_out: int) -> np.ndarray:
        hashes = xxhash32_int_array(np.asarray(values), np.uint64(seed & _MASK64))
        return _mod_d_out_u32(hashes, d_out).astype(np.int64)

    def hash_outer(
        self, seeds: np.ndarray, values: ArrayLike, d_out: int
    ) -> np.ndarray:
        return self.hash_outer_u32(seeds, values, d_out).astype(np.int64)

    def hash_outer_u32(
        self, seeds: np.ndarray, values: ArrayLike, d_out: int
    ) -> np.ndarray:
        seeds = np.asarray(seeds, dtype=np.uint64)
        values = np.asarray(values)
        hashes = xxhash32_int_array(values[None, :], seeds[:, None])
        return _mod_d_out_u32(hashes, d_out)

    def hash_pairwise(
        self, seeds: np.ndarray, values: ArrayLike, d_out: int
    ) -> np.ndarray:
        seeds = np.asarray(seeds, dtype=np.uint64)
        hashes = xxhash32_int_array(np.asarray(values), seeds)
        return _mod_d_out_u32(hashes, d_out).astype(np.int64)


_DEFAULT_FAMILY: Optional[CarterWegmanHashFamily] = None


def default_family() -> CarterWegmanHashFamily:
    """Return the module-wide default hash family (Carter-Wegman)."""
    global _DEFAULT_FAMILY
    if _DEFAULT_FAMILY is None:
        _DEFAULT_FAMILY = CarterWegmanHashFamily()
    return _DEFAULT_FAMILY
