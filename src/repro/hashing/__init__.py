"""Seeded hash families and the support-count kernel engine.

:mod:`repro.hashing.families` defines the universal families local-hashing
oracles draw from; :mod:`repro.hashing.kernels` holds the shared
low-allocation O(n*d) support-count kernel every aggregation path routes
through; :mod:`repro.hashing.xxhash32` provides both the scalar xxHash32
reference and the vectorized fixed-width array path.
"""

from .calibrate import (
    KernelCalibration,
    calibrate_kernel,
    ensure_calibration,
    resolve_chunk_bytes,
)
from .families import (
    CarterWegmanHashFamily,
    HashFamily,
    MultiplyShiftHashFamily,
    XXHash32Family,
    default_family,
    splitmix64,
)
from .kernels import (
    KernelPlan,
    SeedRowCache,
    active_chunk_bytes,
    chunk_spans,
    plan_support_counts,
    set_active_chunk_bytes,
    support_counts_kernel,
)
from .xxhash32 import xxhash32, xxhash32_int, xxhash32_int_array

__all__ = [
    "CarterWegmanHashFamily",
    "HashFamily",
    "KernelCalibration",
    "KernelPlan",
    "MultiplyShiftHashFamily",
    "SeedRowCache",
    "XXHash32Family",
    "active_chunk_bytes",
    "calibrate_kernel",
    "chunk_spans",
    "default_family",
    "ensure_calibration",
    "plan_support_counts",
    "resolve_chunk_bytes",
    "set_active_chunk_bytes",
    "splitmix64",
    "support_counts_kernel",
    "xxhash32",
    "xxhash32_int",
    "xxhash32_int_array",
]
