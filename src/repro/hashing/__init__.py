"""Seeded hash families and the support-count kernel engine.

:mod:`repro.hashing.families` defines the universal families local-hashing
oracles draw from; :mod:`repro.hashing.kernels` holds the shared
low-allocation O(n*d) support-count kernel every aggregation path routes
through; :mod:`repro.hashing.xxhash32` provides both the scalar xxHash32
reference and the vectorized fixed-width array path.
"""

from .families import (
    CarterWegmanHashFamily,
    HashFamily,
    MultiplyShiftHashFamily,
    XXHash32Family,
    default_family,
    splitmix64,
)
from .kernels import (
    KernelPlan,
    chunk_spans,
    plan_support_counts,
    support_counts_kernel,
)
from .xxhash32 import xxhash32, xxhash32_int, xxhash32_int_array

__all__ = [
    "CarterWegmanHashFamily",
    "HashFamily",
    "KernelPlan",
    "MultiplyShiftHashFamily",
    "XXHash32Family",
    "chunk_spans",
    "default_family",
    "plan_support_counts",
    "splitmix64",
    "support_counts_kernel",
    "xxhash32",
    "xxhash32_int",
    "xxhash32_int_array",
]
