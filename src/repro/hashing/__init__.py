"""Seeded hash families for local-hashing frequency oracles."""

from .families import (
    CarterWegmanHashFamily,
    HashFamily,
    MultiplyShiftHashFamily,
    XXHash32Family,
    default_family,
    splitmix64,
)
from .xxhash32 import xxhash32, xxhash32_int

__all__ = [
    "CarterWegmanHashFamily",
    "HashFamily",
    "MultiplyShiftHashFamily",
    "XXHash32Family",
    "default_family",
    "splitmix64",
    "xxhash32",
    "xxhash32_int",
]
