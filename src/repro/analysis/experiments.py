"""Experiment harness: registry-driven sweeps and the parallel trial engine.

Every competitor from Section VII-A is constructible by name for a given
``(d, n, eps_c, delta)`` through the mechanism registry
(:mod:`repro.core.registry`) — the same registry the CLI and the streaming
service resolve through:

========  ==================================================================
name      mechanism
========  ==================================================================
OLH       local-model optimized local hashing at ``eps = eps_c``
Had       local-model Hadamard response at ``eps = eps_c``
SH        shuffled GRR [9] (amplified; falls back below the threshold)
SOLH      the paper's shuffler-optimal local hashing
AUE       appended unary encoding [8] (central target, not LDP)
RAP       shuffled basic RAPPOR (Theorem 2)
RAP_R     removal-LDP RAPPOR [31]
Base      uniform-guess baseline
Lap       central-DP Laplace mechanism
========  ==================================================================

Each built method exposes ``estimate_from_histogram(histogram, rng)``.

Sweeps run on a *trial-plan engine*: every ``(method, eps, repeat)`` trial
is enumerated up front and given its own child of one
``numpy.random.SeedSequence`` root (derived from the caller's generator),
then executed by a ``workers``-sized pool — threads by default, or a
spawn-safe process pool with ``backend="process"`` (built mechanisms and
``SeedSequence`` children ship pickled, which parallelizes whatever
GIL-bound Python remains around the vectorized numpy hot paths — the
hashing/support-count work itself runs the
:mod:`repro.hashing.kernels` engine).  Because each trial owns an
independent
bit stream and scores land in a preallocated array indexed by plan
position, the aggregated results are **bit-identical at any worker count
and on either backend** — ``run_sweep(workers=1)``,
``run_sweep(workers=8)``, and ``run_sweep(workers=8,
backend="process")`` agree to the last ulp
(``tests/analysis/test_experiments.py`` enforces it).
"""

from __future__ import annotations

from collections.abc import Mapping
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from ..core.registry import (
    UnknownMechanismError,
    build_mechanism,
    get_spec,
    registered_names,
    validate_names,
)

__all__ = [
    "FIGURE3_METHODS",
    "METHODS",
    "SweepResult",
    "TRIAL_BACKENDS",
    "UnknownMechanismError",
    "build_method",
    "format_sweep_table",
    "run_sweep",
    "run_trial",
    "run_trial_plan",
    "spawn_trial_seeds",
]
from .metrics import mse

MethodFactory = Callable[[int, int, float, float], object]


class _RegistryMethodsView(Mapping):
    """Live read-only view of the registry as the legacy ``METHODS`` dict.

    Kept for backwards compatibility (``"SOLH" in METHODS``,
    ``sorted(METHODS)``); new code should consult
    :mod:`repro.core.registry` directly for specs and capability flags.
    Like the dict it replaces, keys are *exact canonical names* — alias
    and case-insensitive resolution belong to the registry itself
    (``get_spec`` / ``build_mechanism``), keeping membership consistent
    with iteration.
    """

    def __getitem__(self, name: str) -> MethodFactory:
        spec = get_spec(name)
        if spec.name != name:
            raise KeyError(name)
        return spec.factory

    def __iter__(self):
        return iter(registered_names())

    def __len__(self) -> int:
        return len(registered_names())

    def __repr__(self) -> str:
        return f"MethodsView({', '.join(registered_names())})"


#: The Section VII-A competitor registry (live registry view).
METHODS: Mapping = _RegistryMethodsView()

#: Figure 3's plotting order.
FIGURE3_METHODS = ("OLH", "Had", "Base", "SH", "SOLH", "AUE", "RAP", "RAP_R", "Lap")


def build_method(name: str, d: int, n: int, eps_c: float, delta: float):
    """Construct a registered method.

    Raises :class:`~repro.core.registry.UnknownMechanismError` (a
    ``KeyError``) on unknown names; infeasible parameters raise the
    factory's ``ValueError``.
    """
    return build_mechanism(name, d, n, eps_c, delta)


@dataclass
class SweepResult:
    """Aggregated metric values for one method across an epsilon sweep."""

    method: str
    eps_values: list[float] = field(default_factory=list)
    means: list[float] = field(default_factory=list)
    stds: list[float] = field(default_factory=list)

    def row(self) -> dict:
        return {
            "method": self.method,
            "eps": list(self.eps_values),
            "mean": list(self.means),
            "std": list(self.stds),
        }


def run_trial(
    method,
    histogram: np.ndarray,
    rng: np.random.Generator,
    metric: Callable[[np.ndarray, np.ndarray], float] = mse,
) -> float:
    """One mechanism run on a population, scored against the truth."""
    histogram = np.asarray(histogram, dtype=np.int64)
    true_frequencies = histogram / histogram.sum()
    estimates = method.estimate_from_histogram(histogram, rng)
    return metric(true_frequencies, estimates)


def spawn_trial_seeds(
    rng: np.random.Generator, n_trials: int
) -> list[np.random.SeedSequence]:
    """Derive one independent ``SeedSequence`` per trial from a generator.

    The root sequence's entropy is drawn from the caller's generator, so a
    fixed seed still pins the whole sweep; ``SeedSequence.spawn`` then
    gives every trial a statistically independent child stream.  Trial
    results therefore depend only on the trial's plan position — never on
    which worker ran it or in what order — which is what makes sweeps
    bit-identical at any worker count.
    """
    entropy = [int(word) for word in rng.integers(0, 1 << 32, size=8)]
    return np.random.SeedSequence(entropy).spawn(n_trials)


#: execution backends of the trial-plan engine
TRIAL_BACKENDS = ("thread", "process")


def _process_trial(method, histogram, seed, metric) -> float:
    """Spawn-safe process-pool trial runner.

    Top-level by necessity: spawned workers import it by qualified name.
    The built mechanism, the histogram, the trial's ``SeedSequence``, and
    the metric all travel pickled — every registered mechanism is plain
    parameterized state (``tests/frequency_oracles/test_pickling.py``
    keeps it that way).
    """
    return run_trial(method, histogram, np.random.default_rng(seed), metric)


def run_trial_plan(
    methods: Sequence[Optional[object]],
    histogram: np.ndarray,
    repeats: int,
    rng: np.random.Generator,
    metric: Callable[[np.ndarray, np.ndarray], float] = mse,
    workers: int = 1,
    backend: str = "thread",
) -> np.ndarray:
    """Execute the full trial plan; the deterministic parallel core.

    ``methods`` is one built mechanism per plan cell (``None`` marks an
    infeasible cell, which stays NaN).  Returns a ``(len(methods),
    repeats)`` score matrix.  Trials are seeded per plan position via
    :func:`spawn_trial_seeds` and dispatched to a pool of ``workers`` —
    ``backend="thread"`` (cheap, fine for numpy/GIL-releasing hot paths —
    including every hash family, now that aggregation runs the vectorized
    kernel engine) or ``backend="process"`` (a spawn-context
    ``ProcessPoolExecutor``, which also parallelizes whatever pure-Python
    GIL-bound work remains).  Any worker
    count on either backend yields bit-identical scores: a trial's
    randomness is fixed by its plan position, never by its executor.
    ``workers=1`` always runs inline.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if backend not in TRIAL_BACKENDS:
        raise ValueError(
            f"unknown trial backend: {backend!r} "
            f"(registered: {', '.join(TRIAL_BACKENDS)})"
        )
    histogram = np.asarray(histogram, dtype=np.int64)
    n_cells = len(methods)
    seeds = spawn_trial_seeds(rng, n_cells * repeats)
    scores = np.full((n_cells, repeats), np.nan)

    def _one(task: tuple) -> None:
        cell, repeat = task
        trial_rng = np.random.default_rng(seeds[cell * repeats + repeat])
        scores[cell, repeat] = run_trial(
            methods[cell], histogram, trial_rng, metric
        )

    tasks = [
        (cell, repeat)
        for cell in range(n_cells)
        if methods[cell] is not None
        for repeat in range(repeats)
    ]
    if workers == 1 or len(tasks) <= 1:
        for task in tasks:
            _one(task)
    elif backend == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            # list() drains the iterator so worker exceptions propagate.
            list(pool.map(_one, tasks))
    else:
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=get_context("spawn")
        ) as pool:
            futures = [
                (
                    task,
                    pool.submit(
                        _process_trial,
                        methods[task[0]],
                        histogram,
                        seeds[task[0] * repeats + task[1]],
                        metric,
                    ),
                )
                for task in tasks
            ]
            for (cell, repeat), future in futures:
                scores[cell, repeat] = future.result()
    return scores


def run_sweep(
    method_names: Sequence[str],
    histogram: np.ndarray,
    eps_values: Iterable[float],
    delta: float,
    rng: np.random.Generator,
    repeats: int = 10,
    metric: Callable[[np.ndarray, np.ndarray], float] = mse,
    skip_errors: bool = True,
    workers: int = 1,
    backend: str = "thread",
) -> list[SweepResult]:
    """The Figure 3 experiment: every method, at every ``eps_c``, repeated.

    Method names are validated against the registry *before* anything
    runs: a typo raises :class:`~repro.core.registry.UnknownMechanismError`
    immediately, even under ``skip_errors=True``.  ``skip_errors`` applies
    only to genuine infeasible-parameter ``ValueError``s at construction
    (e.g. AUE's noise probability exceeding 1 at tiny ``eps_c * n``),
    recorded as NaN to match how the paper's plots omit infeasible points.

    ``workers`` parallelizes the trial plan on threads or, with
    ``backend="process"``, on a spawn-safe process pool; results are
    bit-identical at any worker count on either backend (see
    :func:`run_trial_plan`).
    """
    validate_names(method_names)
    histogram = np.asarray(histogram, dtype=np.int64)
    n, d = int(histogram.sum()), len(histogram)
    eps_list = [float(eps_c) for eps_c in eps_values]

    cells: list[tuple[str, float]] = [
        (name, eps_c) for name in method_names for eps_c in eps_list
    ]
    methods: list[Optional[object]] = []
    for name, eps_c in cells:
        try:
            methods.append(build_method(name, d, n, eps_c, delta))
        except ValueError:
            if not skip_errors:
                raise
            methods.append(None)

    scores = run_trial_plan(
        methods, histogram, repeats, rng,
        metric=metric, workers=workers, backend=backend,
    )

    results = []
    for m_index, name in enumerate(method_names):
        result = SweepResult(method=name)
        for e_index, eps_c in enumerate(eps_list):
            cell = m_index * len(eps_list) + e_index
            result.eps_values.append(eps_c)
            if methods[cell] is None:
                result.means.append(float("nan"))
                result.stds.append(float("nan"))
            else:
                result.means.append(float(np.mean(scores[cell])))
                result.stds.append(float(np.std(scores[cell])))
        results.append(result)
    return results


def format_sweep_table(
    results: Sequence[SweepResult], caption: Optional[str] = None
) -> str:
    """Render sweep results as the paper-style text table benches print.

    Tolerates empty and ragged inputs: with no results (or no epsilon
    points anywhere) it degrades to ``"(no results)"``, and rows are
    aligned to the union epsilon grid *by value* — a result missing some
    grid point renders ``n/a`` there rather than shifting its neighbours
    under the wrong header.
    """
    eps_values: list[float] = []
    for result in results:
        for eps_c in result.eps_values:
            if eps_c not in eps_values:
                eps_values.append(eps_c)
    if not results or not eps_values:
        return "(no results)" if caption is None else f"(no results)\n{caption}"
    header = "method  " + "  ".join(f"eps={e:<8.3g}" for e in eps_values)
    lines = [header, "-" * len(header)]
    for result in results:
        by_eps = dict(zip(result.eps_values, result.means))
        row = [by_eps.get(eps_c, float("nan")) for eps_c in eps_values]
        cells = "  ".join(
            f"{m:<12.4e}" if np.isfinite(m) else f"{'n/a':<12}"
            for m in row
        )
        lines.append(f"{result.method:<7} {cells}")
    if caption:
        lines.append(caption)
    return "\n".join(lines)
