"""Experiment harness: the method registry and sweep runners behind the
Figure 3 / Table II / Figure 4 reproductions.

Every competitor from Section VII-A is constructible by name for a given
``(d, n, eps_c, delta)``:

========  ==================================================================
name      mechanism
========  ==================================================================
OLH       local-model optimized local hashing at ``eps = eps_c``
Had       local-model Hadamard response at ``eps = eps_c``
SH        shuffled GRR [9] (amplified; falls back below the threshold)
SOLH      the paper's shuffler-optimal local hashing
AUE       appended unary encoding [8] (central target, not LDP)
RAP       shuffled basic RAPPOR (Theorem 2)
RAP_R     removal-LDP RAPPOR [31]
Base      uniform-guess baseline
Lap       central-DP Laplace mechanism
========  ==================================================================

Each built method exposes ``estimate_from_histogram(histogram, rng)``; the
sweep runner repeats trials and aggregates any metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Sequence

import numpy as np

from ..frequency_oracles import (
    AUE,
    GRR,
    OLH,
    SOLH,
    HadamardResponse,
    LaplaceMechanism,
    UniformBaseline,
    make_rap,
    make_rap_r,
    make_sh,
)
from .metrics import mse

MethodFactory = Callable[[int, int, float, float], object]


def _build_olh(d: int, n: int, eps_c: float, delta: float) -> OLH:
    return OLH(d, eps_c)


def _build_had(d: int, n: int, eps_c: float, delta: float) -> HadamardResponse:
    return HadamardResponse(d, eps_c)


def _build_sh(d: int, n: int, eps_c: float, delta: float) -> GRR:
    oracle, _ = make_sh(d, eps_c, n, delta)
    return oracle


def _build_solh(d: int, n: int, eps_c: float, delta: float) -> SOLH:
    oracle, _ = SOLH.for_central_target(d, eps_c, n, delta)
    return oracle


def _build_aue(d: int, n: int, eps_c: float, delta: float) -> AUE:
    return AUE(d, eps_c, n, delta)


def _build_rap(d: int, n: int, eps_c: float, delta: float):
    oracle, _ = make_rap(d, eps_c, n, delta)
    return oracle


def _build_rap_r(d: int, n: int, eps_c: float, delta: float):
    oracle, _ = make_rap_r(d, eps_c, n, delta)
    return oracle


def _build_base(d: int, n: int, eps_c: float, delta: float) -> UniformBaseline:
    return UniformBaseline(d)


def _build_lap(d: int, n: int, eps_c: float, delta: float) -> LaplaceMechanism:
    return LaplaceMechanism(d, eps_c)


#: The Section VII-A competitor registry.
METHODS: Dict[str, MethodFactory] = {
    "OLH": _build_olh,
    "Had": _build_had,
    "SH": _build_sh,
    "SOLH": _build_solh,
    "AUE": _build_aue,
    "RAP": _build_rap,
    "RAP_R": _build_rap_r,
    "Base": _build_base,
    "Lap": _build_lap,
}

#: Figure 3's plotting order.
FIGURE3_METHODS = ("OLH", "Had", "Base", "SH", "SOLH", "AUE", "RAP", "RAP_R", "Lap")


def build_method(name: str, d: int, n: int, eps_c: float, delta: float):
    """Construct a registered method; raises ``KeyError`` on unknown names."""
    return METHODS[name](d, n, eps_c, delta)


@dataclass
class SweepResult:
    """Aggregated metric values for one method across an epsilon sweep."""

    method: str
    eps_values: list[float] = field(default_factory=list)
    means: list[float] = field(default_factory=list)
    stds: list[float] = field(default_factory=list)

    def row(self) -> dict:
        return {
            "method": self.method,
            "eps": list(self.eps_values),
            "mean": list(self.means),
            "std": list(self.stds),
        }


def run_trial(
    method,
    histogram: np.ndarray,
    rng: np.random.Generator,
    metric: Callable[[np.ndarray, np.ndarray], float] = mse,
) -> float:
    """One mechanism run on a population, scored against the truth."""
    histogram = np.asarray(histogram, dtype=np.int64)
    true_frequencies = histogram / histogram.sum()
    estimates = method.estimate_from_histogram(histogram, rng)
    return metric(true_frequencies, estimates)


def run_sweep(
    method_names: Sequence[str],
    histogram: np.ndarray,
    eps_values: Iterable[float],
    delta: float,
    rng: np.random.Generator,
    repeats: int = 10,
    metric: Callable[[np.ndarray, np.ndarray], float] = mse,
    skip_errors: bool = True,
) -> list[SweepResult]:
    """The Figure 3 experiment: every method, at every ``eps_c``, repeated.

    ``skip_errors=True`` records NaN where a method cannot be configured
    (e.g. AUE's noise probability exceeding 1 at tiny ``eps_c * n``),
    matching how the paper's plots simply omit infeasible points.
    """
    histogram = np.asarray(histogram, dtype=np.int64)
    n, d = int(histogram.sum()), len(histogram)
    results = []
    for name in method_names:
        result = SweepResult(method=name)
        for eps_c in eps_values:
            try:
                method = build_method(name, d, n, eps_c, delta)
            except (ValueError, KeyError):
                if not skip_errors:
                    raise
                result.eps_values.append(float(eps_c))
                result.means.append(float("nan"))
                result.stds.append(float("nan"))
                continue
            scores = [run_trial(method, histogram, rng, metric) for _ in range(repeats)]
            result.eps_values.append(float(eps_c))
            result.means.append(float(np.mean(scores)))
            result.stds.append(float(np.std(scores)))
        results.append(result)
    return results


def format_sweep_table(
    results: Sequence[SweepResult], caption: Optional[str] = None
) -> str:
    """Render sweep results as the paper-style text table benches print."""
    if not results:
        return "(no results)"
    eps_values = results[0].eps_values
    header = "method  " + "  ".join(f"eps={e:<8.3g}" for e in eps_values)
    lines = [header, "-" * len(header)]
    for result in results:
        cells = "  ".join(
            f"{m:<12.4e}" if np.isfinite(m) else f"{'n/a':<12}"
            for m in result.means
        )
        lines.append(f"{result.method:<7} {cells}")
    if caption:
        lines.append(caption)
    return "\n".join(lines)
