"""TreeHist — succinct histograms over huge domains (Section VII-C, [12]).

The domain is the set of fixed-length bit strings (48 bits in the AOL case
study: 2^48 values, far too large for direct frequency oracles).  TreeHist
walks a prefix tree breadth-first: at round ``t`` the candidate set is the
children of the prefixes that survived round ``t - 1``; a frequency oracle
estimates each candidate's frequency (users whose value does not match any
candidate report a dummy), and only the top ``k`` survive.

Budget allocation follows the paper's evaluation:

* **local-model** oracles (OLH, Had): users are split into ``T`` disjoint
  groups, one group per round, each spending the full ``eps``;
* **shuffle-model / central** methods (SH, SOLH, AUE, RAP, RAP_R, Lap):
  every user participates in every round with budget ``eps_c / T`` and
  slack ``delta / T`` (sequential composition) — the better strategy the
  paper points out for the shuffle model.

The frequency estimator is pluggable through the Section VII-A method
registry, which is exactly how Figure 4 swaps competitors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..data.datasets import StringDataset
from .experiments import build_method

#: Methods whose users must be split into per-round groups (plain LDP).
LOCAL_METHODS = frozenset({"OLH", "Had"})


@dataclass
class TreeHistResult:
    """Outcome of one TreeHist execution."""

    #: the reported top-k full-length strings
    discovered: np.ndarray
    #: their estimated frequencies (aligned with ``discovered``)
    estimates: np.ndarray
    #: surviving-candidate counts per round (diagnostic)
    candidates_per_round: list[int] = field(default_factory=list)


def treehist(
    dataset: StringDataset,
    method_name: str,
    eps: float,
    delta: float,
    rng: np.random.Generator,
    k: int = 32,
    bits_per_round: int = 8,
    keep_per_round: Optional[int] = None,
    composition: str = "basic",
) -> TreeHistResult:
    """Find the top-``k`` strings of ``dataset`` under privacy budget ``eps``.

    Parameters
    ----------
    dataset:
        The string population (e.g. :func:`repro.data.aol_like`).
    method_name:
        A Section VII-A registry name ("SOLH", "SH", "OLH", ...).
    eps / delta:
        The total privacy budget (central target for shuffle methods,
        local budget for LDP methods).
    k:
        How many heavy hitters to output.
    bits_per_round:
        Prefix growth per round (8 = one character, as in the paper).
    keep_per_round:
        Candidates kept between rounds (default ``k``, the paper's choice).
    composition:
        Budget allocation across rounds for shuffle/central methods:
        ``"basic"`` (the paper's ``eps/T``) or ``"advanced"``
        (Dwork-Rothblum-Vadhan, larger per-round budgets when it helps —
        the extension the composition ablation measures).  Ignored for
        local methods, which use disjoint user groups instead.
    """
    if dataset.string_bits % bits_per_round:
        raise ValueError(
            f"{dataset.string_bits}-bit strings not divisible by "
            f"{bits_per_round}-bit rounds"
        )
    keep = keep_per_round if keep_per_round is not None else k
    n_rounds = dataset.string_bits // bits_per_round
    branch = 1 << bits_per_round
    local = method_name in LOCAL_METHODS

    if local:
        # Disjoint user groups, full budget each round.
        group_ids = rng.integers(0, n_rounds, size=dataset.n)
        round_eps, round_delta = eps, delta
    else:
        from ..core.composition import split_budget

        group_ids = None
        split = split_budget(eps, delta, n_rounds, method=composition)
        round_eps, round_delta = split.eps_per_round, split.delta_per_round

    survivors = np.zeros(1, dtype=np.int64)  # the empty prefix
    survivor_estimates = np.zeros(1)
    candidates_per_round: list[int] = []

    for round_index in range(n_rounds):
        prefix_bits = (round_index + 1) * bits_per_round
        # Children of every surviving prefix.
        candidates = (
            (survivors[:, None] << bits_per_round)
            | np.arange(branch, dtype=np.int64)[None, :]
        ).reshape(-1)
        candidates.sort()
        candidates_per_round.append(len(candidates))

        if local:
            mask = group_ids == round_index
            user_prefixes = dataset.prefixes(prefix_bits)[mask]
        else:
            user_prefixes = dataset.prefixes(prefix_bits)
        n_round = len(user_prefixes)

        # Map users onto candidate indices; non-matching users -> dummy.
        positions = np.searchsorted(candidates, user_prefixes)
        positions = np.clip(positions, 0, len(candidates) - 1)
        matched = candidates[positions] == user_prefixes
        domain = len(candidates) + 1  # + dummy slot
        mapped = np.where(matched, positions, len(candidates))
        histogram = np.bincount(mapped, minlength=domain)

        method = build_method(method_name, domain, n_round, round_eps, round_delta)
        estimates = method.estimate_from_histogram(histogram, rng)
        candidate_estimates = np.asarray(estimates[:len(candidates)], dtype=float)

        n_keep = min(keep, len(candidates))
        top = np.argsort(-candidate_estimates, kind="stable")[:n_keep]
        survivors = candidates[top]
        survivor_estimates = candidate_estimates[top]

    order = np.argsort(-survivor_estimates, kind="stable")[:k]
    return TreeHistResult(
        discovered=survivors[order],
        estimates=survivor_estimates[order],
        candidates_per_round=candidates_per_round,
    )
