"""Evaluation metrics used throughout the paper's experiments."""

from __future__ import annotations

import numpy as np


def mse(true_frequencies: np.ndarray, estimates: np.ndarray) -> float:
    """Mean squared error over the domain (the paper's primary metric):
    ``MSE = (1/|D|) sum_v (f_v - f_hat_v)^2``.
    """
    true_frequencies = np.asarray(true_frequencies, dtype=float)
    estimates = np.asarray(estimates, dtype=float)
    if true_frequencies.shape != estimates.shape:
        raise ValueError(
            f"shape mismatch: {true_frequencies.shape} vs {estimates.shape}"
        )
    return float(np.mean((true_frequencies - estimates) ** 2))


def mean_absolute_error(
    true_frequencies: np.ndarray, estimates: np.ndarray
) -> float:
    """Mean absolute error over the domain."""
    true_frequencies = np.asarray(true_frequencies, dtype=float)
    estimates = np.asarray(estimates, dtype=float)
    if true_frequencies.shape != estimates.shape:
        raise ValueError(
            f"shape mismatch: {true_frequencies.shape} vs {estimates.shape}"
        )
    return float(np.mean(np.abs(true_frequencies - estimates)))


def max_absolute_error(
    true_frequencies: np.ndarray, estimates: np.ndarray
) -> float:
    """Worst-case per-value error (the "< 0.01%" headline of Section VII)."""
    true_frequencies = np.asarray(true_frequencies, dtype=float)
    estimates = np.asarray(estimates, dtype=float)
    return float(np.max(np.abs(true_frequencies - estimates)))


def precision_at_k(true_top_k, reported_top_k) -> float:
    """Fraction of the reported top-k that belongs to the true top-k.

    The Figure 4 metric: both sets have size ``k``, so this equals recall.
    """
    true_set = set(int(v) for v in true_top_k)
    reported = [int(v) for v in reported_top_k]
    if not reported:
        return 0.0
    hits = sum(1 for v in reported if v in true_set)
    return hits / len(reported)


def top_k_from_estimates(estimates: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest estimates (stable tie-breaking)."""
    estimates = np.asarray(estimates, dtype=float)
    if not 0 < k <= len(estimates):
        raise ValueError(f"invalid k={k} for {len(estimates)} values")
    return np.argsort(-estimates, kind="stable")[:k]
