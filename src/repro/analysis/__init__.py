"""Evaluation layer: metrics, the experiment harness, and TreeHist."""

from .confidence import (
    IntervalBand,
    frequency_band,
    minimum_detectable_frequency,
    z_score,
)
from .experiments import (
    FIGURE3_METHODS,
    METHODS,
    SweepResult,
    UnknownMechanismError,
    build_method,
    format_sweep_table,
    run_sweep,
    run_trial,
    run_trial_plan,
    spawn_trial_seeds,
)
from .metrics import (
    max_absolute_error,
    mean_absolute_error,
    mse,
    precision_at_k,
    top_k_from_estimates,
)
from .treehist import LOCAL_METHODS, TreeHistResult, treehist

__all__ = [
    "FIGURE3_METHODS",
    "IntervalBand",
    "LOCAL_METHODS",
    "METHODS",
    "SweepResult",
    "TreeHistResult",
    "UnknownMechanismError",
    "build_method",
    "frequency_band",
    "format_sweep_table",
    "max_absolute_error",
    "mean_absolute_error",
    "mse",
    "minimum_detectable_frequency",
    "precision_at_k",
    "run_sweep",
    "run_trial",
    "run_trial_plan",
    "spawn_trial_seeds",
    "top_k_from_estimates",
    "treehist",
    "z_score",
]
