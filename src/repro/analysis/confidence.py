"""Confidence intervals for frequency estimates.

Every estimator in the library is a debiased sum of independent per-report
indicators, so its sampling distribution is asymptotically Gaussian with
the variance given by the Section IV-B3 analysis.  This module turns those
closed forms into per-value confidence intervals — a practical necessity
for any consumer of the estimates that the paper leaves implicit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class IntervalBand:
    """Symmetric per-value confidence band around the estimates."""

    estimates: np.ndarray
    halfwidth: float
    confidence: float

    @property
    def lower(self) -> np.ndarray:
        return self.estimates - self.halfwidth

    @property
    def upper(self) -> np.ndarray:
        return self.estimates + self.halfwidth

    def covers(self, true_frequencies: np.ndarray) -> np.ndarray:
        """Boolean mask of values whose truth lies inside the band."""
        truth = np.asarray(true_frequencies, dtype=float)
        return (self.lower <= truth) & (truth <= self.upper)

    def coverage(self, true_frequencies: np.ndarray) -> float:
        """Empirical coverage rate (should approach ``confidence``)."""
        return float(self.covers(true_frequencies).mean())


def z_score(confidence: float) -> float:
    """Two-sided standard-normal quantile (Newton on erf)."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    x = 1.0
    for __ in range(60):
        error = math.erf(x / math.sqrt(2.0)) - confidence
        derivative = math.sqrt(2.0 / math.pi) * math.exp(-(x**2) / 2.0)
        step = error / derivative
        x -= step
        if abs(step) < 1e-12:
            break
    return x


def frequency_band(
    estimates: np.ndarray, variance: float, confidence: float = 0.95
) -> IntervalBand:
    """Build a band from an analytical per-value variance.

    ``variance`` comes from the :mod:`repro.core.variance` closed forms —
    e.g. ``solh_variance_shuffled(eps_c, n, delta)`` for SOLH estimates.
    """
    if variance < 0.0:
        raise ValueError(f"variance must be non-negative, got {variance}")
    halfwidth = z_score(confidence) * math.sqrt(variance)
    return IntervalBand(
        estimates=np.asarray(estimates, dtype=float),
        halfwidth=halfwidth,
        confidence=confidence,
    )


def minimum_detectable_frequency(
    variance: float, confidence: float = 0.95
) -> float:
    """Smallest true frequency reliably distinguishable from zero.

    A value is "detectable" when its estimate exceeds the band around 0;
    this is the planning quantity behind the paper's "< 0.01% absolute
    error" headline: frequencies below it are statistical noise.
    """
    return 2.0 * z_score(confidence) * math.sqrt(variance)
