"""The async HTTP front door: batched ingestion + estimate query API.

See :mod:`repro.server.app` for the service itself,
:mod:`repro.server.pagination` for the query envelope, and
:mod:`repro.server.client` for the minimal client the bench and CI use.
"""

from .app import SERVER_SCHEMA, ServerConfig, TelemetryServer
from .client import ClientResponse, ServerClient, fetch_all_estimates
from .http import HttpError, Request
from .pagination import DEFAULT_LIMIT, MAX_LIMIT, SORT_FIELDS

__all__ = [
    "SERVER_SCHEMA",
    "ServerConfig",
    "TelemetryServer",
    "ClientResponse",
    "ServerClient",
    "fetch_all_estimates",
    "HttpError",
    "Request",
    "DEFAULT_LIMIT",
    "MAX_LIMIT",
    "SORT_FIELDS",
]
