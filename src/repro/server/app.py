"""The async HTTP front door over a streaming pipeline.

:class:`TelemetryServer` turns a :class:`~repro.service.sharded.
ShardedPipeline` (or the serial :class:`~repro.service.pipeline.
TelemetryPipeline`) into a network service:

* ``POST /api/reports`` — one JSON batch of raw values
  (``{"values": [3, 0, 7, ...]}``), validated against the deployment's
  domain before it is accepted.  Accepted batches are enqueued on a
  **bounded** ingest queue and acknowledged with HTTP 202 and their
  ``submit_seq`` — the position in the pipeline's ingest order, which
  is what makes a server run replayable in-process (the ingest RNG
  privatizes in arrival order).  A full queue is explicit backpressure:
  HTTP 429 with a ``Retry-After`` header, and the batch is *not*
  accepted — every 202 is a promise the batch reaches the pipeline.
* ``POST /api/epochs`` — close the current collection epoch; rides the
  same queue (so it orders after every batch accepted before it) and
  returns the epoch's :class:`~repro.service.pipeline.EpochReport`.
* ``GET /api/health`` / ``GET /api/config`` — liveness counters and the
  canonical deployment parameters (the persisted ``StreamConfig``
  serialization, plan included).
* ``GET /api/estimates`` — released per-epoch estimates from the state
  store's epoch log, paginated per :mod:`repro.server.pagination`.

Threading model: the event loop owns sockets, parsing, validation, and
the queue; **one** ingest thread (a single-worker executor) owns the
pipeline and its state store — it builds both at :meth:`start` (so a
SQLite store's thread-bound connection lives where it is used), executes
queued jobs strictly in acceptance order, and serves the epoch-log reads
behind ``/api/estimates``.  The loop never blocks on a fold; the
pipeline never sees two threads.

If a queued job fails (a store error mid-run, say) and the server was
*not* given a ``recover_factory``, it marks itself failed: in-flight
epoch closes get HTTP 500, subsequent uploads get 503, and
``/api/health`` reports the failure — queued batches that can no longer
be applied are counted, never silently dropped.  With a
``recover_factory`` (a zero-argument callable rebuilding the pipeline
from its durable state store, see
:meth:`repro.api.session.ShuffleSession.serve`), an ingest crash instead
triggers bounded-backoff self-healing: the broken pipeline is closed,
the factory resumes a fresh one from the store's write-ahead log (PR 6's
bit-identical replay), and service continues — health reports
``degraded`` during the attempt and returns to ``ok`` after.  The job
that crashed is still counted failed (its batch was never journaled);
everything already accepted behind it applies to the recovered pipeline
in order.  A factory that raises :class:`RecoveryUnsupportedError`
(e.g. the deployment has no durable store) restores the fail-hard
behavior.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..core.errors import ConfigError
from ..faults import fail_point
from ..persistence.records import config_to_dict
from .http import (
    MAX_BODY_BYTES,
    MAX_HEADER_BYTES,
    HttpError,
    Request,
    error_bytes,
    read_request,
    response_bytes,
)
from .pagination import paginate, parse_non_negative_int

#: schema tag of every front-door JSON payload family
SERVER_SCHEMA = "repro.server/1"

#: ceiling on the exponential backoff between pipeline recovery attempts
_RECOVERY_BACKOFF_CAP_S = 2.0


class RecoveryUnsupportedError(RuntimeError):
    """A ``recover_factory`` cannot resume this deployment (no durable
    store, or the store refuses to load) — the server falls back to
    fail-hard 503s instead of retrying a recovery that can never work."""


#: route table: path -> allowed methods
_ROUTES = {
    "/api/health": ("GET",),
    "/api/config": ("GET",),
    "/api/estimates": ("GET",),
    "/api/reports": ("POST",),
    "/api/epochs": ("POST",),
}


@dataclass(frozen=True)
class ServerConfig:
    """Static configuration of the HTTP front door itself.

    Deployment parameters (mechanism, domain, budget) stay on the
    pipeline's :class:`~repro.service.pipeline.StreamConfig`; this is
    only the network surface: where to listen, how much ingest may be
    pending before the server pushes back, and how it frames that
    pushback.
    """

    host: str = "127.0.0.1"
    port: int = 8000
    #: report batches (and epoch closes) the ingest queue holds before
    #: uploads are refused with 429
    max_pending: int = 64
    #: request body cap; beyond it uploads get 413
    max_body_bytes: int = MAX_BODY_BYTES
    max_header_bytes: int = MAX_HEADER_BYTES
    #: seconds advertised in the 429 ``Retry-After`` header
    retry_after_s: float = 1.0
    #: pipeline recovery attempts per ingest crash before the server
    #: gives up and fails hard (0 disables self-healing entirely)
    max_recoveries: int = 3
    #: base of the capped exponential backoff between recovery attempts
    recovery_backoff_s: float = 0.05

    def __post_init__(self):
        if not self.host:
            raise ConfigError("host", "must be a non-empty host or address")
        if not 0 <= self.port <= 65535:
            raise ConfigError(
                "port", f"must be in [0, 65535] (0 picks a free port), "
                f"got {self.port}"
            )
        if self.max_pending < 1:
            raise ConfigError(
                "max_pending", f"must be >= 1, got {self.max_pending}"
            )
        if self.max_body_bytes < 1024:
            raise ConfigError(
                "max_body_bytes",
                f"must be >= 1024, got {self.max_body_bytes}",
            )
        if self.max_header_bytes < 1024:
            raise ConfigError(
                "max_header_bytes",
                f"must be >= 1024, got {self.max_header_bytes}",
            )
        if not self.retry_after_s > 0.0:
            raise ConfigError(
                "retry_after_s",
                f"must be positive, got {self.retry_after_s}",
            )
        if self.max_recoveries < 0:
            raise ConfigError(
                "max_recoveries",
                f"must be >= 0 (0 disables self-healing), "
                f"got {self.max_recoveries}",
            )
        if not self.recovery_backoff_s > 0.0:
            raise ConfigError(
                "recovery_backoff_s",
                f"must be positive, got {self.recovery_backoff_s}",
            )


@dataclass
class _Job:
    """One unit of ingest work, executed in acceptance order."""

    kind: str  # "reports" | "epoch"
    values: Optional[np.ndarray]
    seq: int
    future: Optional[asyncio.Future]


class TelemetryServer:
    """One deployment's HTTP front door; see the module docstring.

    ``pipeline_factory`` is a zero-argument callable building the wired
    pipeline (typically a closure over
    :meth:`repro.api.session.ShuffleSession.stream`); it runs on the
    ingest thread during :meth:`start`, so stores it creates are owned
    by the thread that will use them.  ``recover_factory`` (optional) is
    a zero-argument callable *resuming* a replacement pipeline from the
    deployment's durable store after an ingest crash — see the module
    docstring's self-healing contract.  Use
    ``async with``/``await stop()`` to guarantee the pipeline (and any
    shared-memory pool or process pool it holds) is closed.
    """

    def __init__(
        self,
        pipeline_factory: Callable[[], object],
        config: ServerConfig,
        recover_factory: Optional[Callable[[], object]] = None,
    ):
        self.config = config
        self._pipeline_factory = pipeline_factory
        self._recover_factory = recover_factory
        self.pipeline = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._queue: Optional[asyncio.Queue] = None
        self._consumer: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closing = False
        self._failure: Optional[BaseException] = None
        self._submit_seq = 0
        self._recovering = False
        self.accepted_batches = 0
        self.accepted_reports = 0
        self.rejected_429 = 0
        self.failed_batches = 0
        self.recoveries = 0
        self.recovery_attempts = 0
        #: close() failures of pipelines discarded during recovery —
        #: recorded (never swallowed silently) and surfaced in health
        self.recovery_close_errors: List[str] = []

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the kernel's pick)."""
        if self._server is None:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "TelemetryServer":
        """Build the pipeline on the ingest thread and start listening."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-ingest"
        )
        try:
            self.pipeline = await self._loop.run_in_executor(
                self._executor, self._pipeline_factory
            )
            self._queue = asyncio.Queue(maxsize=self.config.max_pending)
            self._consumer = self._loop.create_task(self._consume())
            self._server = await asyncio.start_server(
                self._handle,
                host=self.config.host,
                port=self.config.port,
                limit=max(self.config.max_header_bytes * 2, 64 * 1024),
            )
        except BaseException:
            self._executor.shutdown(wait=True)
            self._executor = None
            if self._consumer is not None:
                self._consumer.cancel()
                self._consumer = None
            raise
        return self

    async def stop(self) -> None:
        """Graceful shutdown: drain accepted work, then release everything.

        Ordering is the clean-exit contract the CI smoke pins: stop
        accepting (new requests get 503 while existing sockets flush),
        wait for every accepted job to reach the pipeline, then close
        the pipeline on its own thread — which drains process folds and
        unlinks every shared-memory segment — and the state store with
        it.  Idempotent.
        """
        if self._server is None or self._closing:
            self._closing = True
            return
        self._closing = True
        self._server.close()
        await self._server.wait_closed()
        if self._queue is not None:
            await self._queue.join()
        if self._consumer is not None:
            self._consumer.cancel()
            try:
                await self._consumer
            except asyncio.CancelledError:
                pass
            self._consumer = None
        if self._executor is not None:
            try:
                await self._loop.run_in_executor(
                    self._executor, self._close_pipeline
                )
            finally:
                self._executor.shutdown(wait=True)
                self._executor = None

    def _close_pipeline(self) -> None:
        pipeline, self.pipeline = self.pipeline, None
        if pipeline is None:
            return
        try:
            close = getattr(pipeline, "close", None)
            if close is not None:
                close()
        finally:
            store = getattr(pipeline, "store", None)
            if store is not None:
                store.close()

    async def __aenter__(self) -> "TelemetryServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- the ingest thread -------------------------------------------------

    async def _consume(self) -> None:
        """Apply queued jobs to the pipeline, strictly in queue order.

        A job failure drops *that job* (counted, its waiter told) and —
        when a ``recover_factory`` is wired — attempts to resume a
        replacement pipeline before touching the next job, so everything
        accepted behind the crash still applies in order.  Only when
        recovery is unavailable or exhausted does the server latch
        ``_failure`` and refuse further work.
        """
        while True:
            job: _Job = await self._queue.get()
            try:
                if self._failure is not None:
                    raise RuntimeError(
                        f"ingest already failed: {self._failure}"
                    ) from self._failure
                result = await self._loop.run_in_executor(
                    self._executor, self._apply, job
                )
                if job.future is not None and not job.future.done():
                    job.future.set_result(result)
            except asyncio.CancelledError:
                raise  # stop() cancelling us; the finally marks the job
            except BaseException as failure:
                if job.kind == "reports":
                    self.failed_batches += 1
                if job.future is not None and not job.future.done():
                    job.future.set_exception(failure)
                if self._failure is None and not await self._try_recover(
                    failure
                ):
                    self._failure = failure
            finally:
                self._queue.task_done()

    def _apply(self, job: _Job):
        # Chaos seam: ``at=K`` schedules target one exact submit_seq.
        fail_point("server.ingest", sequence=job.seq)
        if job.kind == "reports":
            self.pipeline.submit(job.values)
            return None
        return self.pipeline.end_epoch()

    async def _try_recover(self, failure: BaseException) -> bool:
        """Bounded-backoff pipeline resume after an ingest crash.

        Runs on the event loop between jobs; the actual close/resume
        work runs on the ingest thread.  Returns True when a replacement
        pipeline is serving, False when the server must fail hard (no
        factory, unsupported deployment, or attempts exhausted).
        """
        if self._recover_factory is None or self.config.max_recoveries < 1:
            return False
        self._recovering = True
        try:
            for attempt in range(self.config.max_recoveries):
                await asyncio.sleep(
                    min(
                        _RECOVERY_BACKOFF_CAP_S,
                        self.config.recovery_backoff_s * 2.0 ** attempt,
                    )
                )
                self.recovery_attempts += 1
                try:
                    self.pipeline = await self._loop.run_in_executor(
                        self._executor, self._recover
                    )
                except RecoveryUnsupportedError:
                    return False
                except Exception as retry_failure:
                    self.recovery_close_errors.append(
                        f"recovery attempt {self.recovery_attempts} "
                        f"failed: {retry_failure!r}"
                    )
                    continue
                self.recoveries += 1
                return True
            return False
        finally:
            self._recovering = False

    def _recover(self):
        """Discard the broken pipeline and resume from the durable store.

        Runs on the ingest thread.  The broken pipeline's close (and its
        store's) is best-effort: a pipeline that just crashed may well
        fail to close too, and that must not block the resume — but the
        failure is recorded, never silently dropped.
        """
        broken, self.pipeline = self.pipeline, None
        if broken is not None:
            try:
                close = getattr(broken, "close", None)
                if close is not None:
                    close()
            except Exception as close_failure:
                self.recovery_close_errors.append(
                    f"broken pipeline close failed: {close_failure!r}"
                )
            store = getattr(broken, "store", None)
            if store is not None:
                try:
                    store.close()
                except Exception as close_failure:
                    self.recovery_close_errors.append(
                        f"broken store close failed: {close_failure!r}"
                    )
        return self._recover_factory()

    def _epoch_rows(self) -> List[Tuple[int, list]]:
        """The store's epoch log as plain Python rows (ingest thread)."""
        return [
            (int(epoch), [float(x) for x in estimates])
            for epoch, estimates in self.pipeline.store.epoch_log()
        ]

    # -- request handling --------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader,
                        max_header_bytes=self.config.max_header_bytes,
                        max_body_bytes=self.config.max_body_bytes,
                    )
                except HttpError as framing:
                    writer.write(error_bytes(framing, keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                try:
                    payload, status, headers = await self._dispatch(request)
                    response = response_bytes(
                        status, payload,
                        keep_alive=request.keep_alive, headers=headers,
                    )
                except HttpError as refused:
                    response = error_bytes(
                        refused, keep_alive=request.keep_alive
                    )
                    if refused.close:
                        writer.write(response)
                        await writer.drain()
                        break
                except Exception as unexpected:  # never leak a traceback
                    response = error_bytes(
                        HttpError(500, f"internal error: {unexpected}"),
                        keep_alive=request.keep_alive,
                    )
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-response; nothing to salvage
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: Request) -> Tuple[dict, int, tuple]:
        allowed = _ROUTES.get(request.path)
        if allowed is None:
            raise HttpError(404, f"unknown path {request.path!r}")
        if request.method not in allowed:
            raise HttpError(
                405,
                f"{request.method} is not supported on {request.path}",
                headers=(("Allow", ", ".join(allowed)),),
            )
        if request.path == "/api/health":
            return self._health_payload(), 200, ()
        if self._closing:
            raise HttpError(
                503, "server is shutting down", headers=(("Retry-After", "1"),)
            )
        if request.path == "/api/config":
            return self._config_payload(), 200, ()
        if request.path == "/api/estimates":
            return await self._estimates_payload(request), 200, ()
        if request.path == "/api/reports":
            return self._accept_reports(request)
        return await self._close_epoch()

    # -- handlers ----------------------------------------------------------

    def _health_payload(self) -> dict:
        if self._failure is not None:
            status = "failed"
        elif self._closing:
            status = "closing"
        elif self._recovering:
            status = "degraded"
        else:
            status = "ok"
        payload = {
            "schema": SERVER_SCHEMA,
            "status": status,
            "pending": self._queue.qsize() if self._queue else 0,
            "epochs_completed": self.pipeline.epochs_completed
            if self.pipeline is not None else 0,
            "accepted_batches": self.accepted_batches,
            "accepted_reports": self.accepted_reports,
            "rejected_429": self.rejected_429,
            "failed_batches": self.failed_batches,
            "recoveries": self.recoveries,
            "recovery_attempts": self.recovery_attempts,
            "exhausted": bool(self.pipeline.exhausted)
            if self.pipeline is not None else False,
        }
        if self.recovery_close_errors:
            payload["recovery_errors"] = list(self.recovery_close_errors)
        if self._failure is not None:
            payload["failure"] = str(self._failure)
        return payload

    def _config_payload(self) -> dict:
        return {
            "schema": SERVER_SCHEMA,
            "deployment": config_to_dict(self.pipeline.config),
            "server": {
                "max_pending": self.config.max_pending,
                "max_body_bytes": self.config.max_body_bytes,
                "retry_after_s": self.config.retry_after_s,
            },
        }

    async def _estimates_payload(self, request: Request) -> dict:
        epoch_filter = parse_non_negative_int(request, "epoch", -1)
        rows = await self._loop.run_in_executor(
            self._executor, self._epoch_rows
        )
        items = [
            {"epoch": epoch, "index": index, "estimate": estimate}
            for epoch, estimates in rows
            if epoch_filter < 0 or epoch == epoch_filter
            for index, estimate in enumerate(estimates)
        ]
        envelope = paginate(items, request)
        envelope["schema"] = SERVER_SCHEMA
        return envelope

    def _validated_values(self, request: Request) -> np.ndarray:
        payload = request.json()
        if "values" not in payload:
            raise HttpError(
                400, "body must carry a 'values' array", field="values"
            )
        values = payload["values"]
        d = self.pipeline.config.d
        if not isinstance(values, list) or not values:
            raise HttpError(
                400,
                f"must be a non-empty JSON array of integers in [0, {d})",
                field="values",
            )
        array = np.asarray(values)
        if array.ndim != 1 or array.dtype.kind not in "iu":
            raise HttpError(
                400, f"must be integers in [0, {d})", field="values"
            )
        if int(array.min()) < 0 or int(array.max()) >= d:
            raise HttpError(
                400, f"values outside the domain [0, {d})", field="values"
            )
        return array.astype(np.int64)

    def _refuse_if_failed(self) -> None:
        if self._failure is not None:
            raise HttpError(
                503,
                f"ingest pipeline failed and the server no longer accepts "
                f"work: {self._failure}",
            )

    def _accept_reports(self, request: Request) -> Tuple[dict, int, tuple]:
        self._refuse_if_failed()
        values = self._validated_values(request)
        job = _Job(
            kind="reports", values=values, seq=self._submit_seq, future=None
        )
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self.rejected_429 += 1
            retry_after = max(1, round(self.config.retry_after_s))
            raise HttpError(
                429,
                f"ingest queue is full ({self.config.max_pending} pending "
                f"batches); retry after Retry-After seconds",
                headers=(("Retry-After", str(retry_after)),),
            ) from None
        self._submit_seq += 1
        self.accepted_batches += 1
        self.accepted_reports += len(values)
        return (
            {
                "schema": SERVER_SCHEMA,
                "accepted": len(values),
                "submit_seq": job.seq,
                "pending": self._queue.qsize(),
            },
            202,
            (),
        )

    async def _close_epoch(self) -> Tuple[dict, int, tuple]:
        self._refuse_if_failed()
        future = self._loop.create_future()
        job = _Job(
            kind="epoch", values=None, seq=self._submit_seq, future=future
        )
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self.rejected_429 += 1
            retry_after = max(1, round(self.config.retry_after_s))
            raise HttpError(
                429,
                f"ingest queue is full ({self.config.max_pending} pending "
                f"batches); retry after Retry-After seconds",
                headers=(("Retry-After", str(retry_after)),),
            ) from None
        self._submit_seq += 1
        try:
            report = await future
        except Exception as failure:
            raise HttpError(500, f"epoch close failed: {failure}") from failure
        payload = {"schema": SERVER_SCHEMA}
        payload.update(asdict(report))
        return payload, 200, ()
