"""Pagination for the estimate query API: envelope, cursors, sorting.

The response shape follows the article-index API surveyed in SNIPPETS
Snippet 3::

    {"items": [...],
     "page": {"total": 1234, "limit": 50, "offset": 0,
              "next_cursor": "3|17", "has_more": true}}

Two pagination styles compose:

* **offset** — ``limit`` (default 50, silently clamped to the 200
  maximum) and ``offset`` skip into the sorted item list; an offset past
  the end is an empty page, not an error.
* **keyset cursor** — ``cursor={epoch}|{index}`` resumes *after* the
  named item, so a crawler never re-reads or skips rows when new epochs
  land between pages.  ``next_cursor`` in each response is the value to
  pass back; it is ``null`` on the last page.  Cursors are only
  meaningful under the canonical ``(epoch, index)`` ascending order, so
  combining ``cursor`` with a non-default ``sort`` is HTTP 400.

``sort`` takes comma-separated field names — ``field``/``field:asc``
ascending, ``-field``/``field:desc`` descending — over the item fields
``epoch``, ``index``, ``estimate``.  Unknown fields are HTTP 400 naming
``sort``, mirroring the exemplar.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .http import HttpError, Request

#: page size when ``limit`` is omitted
DEFAULT_LIMIT = 50

#: hard page-size ceiling; larger requests are clamped, not rejected
MAX_LIMIT = 200

#: item fields ``sort`` may name
SORT_FIELDS = ("epoch", "index", "estimate")

#: the canonical order — the only one keyset cursors are defined over
DEFAULT_SORT: Tuple[Tuple[str, bool], ...] = (
    ("epoch", True), ("index", True)
)


def parse_non_negative_int(request: Request, name: str, default: int) -> int:
    """One ``>= 0`` integer query parameter; HTTP 400 names the field."""
    text = request.param(name)
    if text is None:
        return default
    try:
        value = int(text)
        if value < 0:
            raise ValueError
    except ValueError:
        raise HttpError(
            400, f"must be a non-negative integer, got {text!r}", field=name
        ) from None
    return value


def parse_limit(request: Request) -> int:
    """``limit``: default 50, clamped to :data:`MAX_LIMIT`, 400 below 1."""
    text = request.param("limit")
    if text is None:
        return DEFAULT_LIMIT
    try:
        value = int(text)
        if value < 1:
            raise ValueError
    except ValueError:
        raise HttpError(
            400, f"must be a positive integer, got {text!r}", field="limit"
        ) from None
    return min(value, MAX_LIMIT)


def parse_sort(request: Request) -> Tuple[Tuple[str, bool], ...]:
    """The requested ordering as ``((field, ascending), ...)``.

    Accepts the Snippet-3 spellings: ``sort=-epoch``,
    ``sort=estimate:desc,index:asc``.  Unknown fields and directions are
    HTTP 400 naming ``sort``.
    """
    text = request.param("sort")
    if text is None:
        return DEFAULT_SORT
    keys: List[Tuple[str, bool]] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            raise HttpError(400, "empty sort field", field="sort")
        ascending = True
        if token.startswith("-"):
            ascending = False
            token = token[1:]
        field_name, separator, direction = token.partition(":")
        if separator:
            direction = direction.strip().lower()
            if direction == "desc":
                ascending = False
            elif direction != "asc":
                raise HttpError(
                    400,
                    f"unknown sort direction {direction!r}; use asc or desc",
                    field="sort",
                )
        field_name = field_name.strip()
        if field_name not in SORT_FIELDS:
            raise HttpError(
                400,
                f"unknown sort field {field_name!r}; sortable fields: "
                f"{', '.join(SORT_FIELDS)}",
                field="sort",
            )
        keys.append((field_name, ascending))
    return tuple(keys)


def parse_cursor(request: Request) -> Optional[Tuple[int, int]]:
    """The ``{epoch}|{index}`` keyset cursor; HTTP 400 when malformed."""
    text = request.param("cursor")
    if text is None:
        return None
    parts = text.split("|")
    if len(parts) != 2:
        raise HttpError(
            400,
            f"cursor must be '{{epoch}}|{{index}}', got {text!r}",
            field="cursor",
        )
    try:
        epoch, index = int(parts[0]), int(parts[1])
        if epoch < 0 or index < 0:
            raise ValueError
    except ValueError:
        raise HttpError(
            400,
            f"cursor must be '{{epoch}}|{{index}}' with non-negative "
            f"integers, got {text!r}",
            field="cursor",
        ) from None
    return epoch, index


def _sorted_items(
    items: Sequence[Dict], order: Tuple[Tuple[str, bool], ...]
) -> List[Dict]:
    """Apply a multi-field mixed-direction order via stable re-sorts."""
    result = list(items)
    for field_name, ascending in reversed(order):
        result.sort(key=lambda item: item[field_name], reverse=not ascending)
    return result


def paginate(items: Sequence[Dict], request: Request) -> dict:
    """Build the Snippet-3 envelope for one page of ``items``.

    ``items`` is the full (unsorted) row list; the request's ``limit``,
    ``offset``, ``cursor``, and ``sort`` parameters select the page.
    With a cursor, ``offset`` skips *additional* rows past the cursor
    position, and the reported ``page.offset`` is the absolute start
    position in the sorted list.
    """
    limit = parse_limit(request)
    offset = parse_non_negative_int(request, "offset", 0)
    order = parse_sort(request)
    cursor = parse_cursor(request)
    if cursor is not None and order != DEFAULT_SORT:
        raise HttpError(
            400,
            "keyset cursors are defined over the default (epoch, index) "
            "ascending order; drop the sort parameter to use a cursor",
            field="cursor",
        )
    ordered = _sorted_items(items, order)
    start = offset
    if cursor is not None:
        # Keyset: resume strictly after (epoch, index) — a cursor past
        # the last epoch lands on the empty tail, which is a valid
        # (empty) page rather than an error.
        position = 0
        while position < len(ordered) and (
            ordered[position]["epoch"], ordered[position]["index"]
        ) <= cursor:
            position += 1
        start = position + offset
    page = ordered[start:start + limit]
    has_more = start + limit < len(ordered)
    next_cursor = None
    if has_more and page and order == DEFAULT_SORT:
        next_cursor = f"{page[-1]['epoch']}|{page[-1]['index']}"
    return {
        "items": page,
        "page": {
            "total": len(ordered),
            "limit": limit,
            "offset": start,
            "next_cursor": next_cursor,
            "has_more": has_more,
        },
    }
