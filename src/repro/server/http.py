"""Minimal HTTP/1.1 on asyncio streams — just enough for the front door.

The service deliberately speaks plain stdlib HTTP (``asyncio.start_server``
plus this parser) instead of pulling in a framework, matching the
package's sqlite3/multiprocessing discipline: no new runtime
dependencies, and every byte on the wire is accounted for.

Scope (all the front door needs, nothing more):

* request parsing with hard limits — header block capped at
  ``max_header_bytes`` (431 beyond it), body capped at
  ``max_body_bytes`` (413 beyond it, connection closed since the unread
  payload cannot be trusted), ``Content-Length`` framing only
  (chunked uploads get 501);
* JSON responses with explicit ``Content-Length`` and keep-alive
  handling (HTTP/1.1 persistent by default, ``Connection: close``
  honored, HTTP/1.0 closed by default);
* :class:`HttpError` — the one error channel: handlers raise it with a
  status, a message, and (for validation failures) the offending field
  name, mirroring :class:`~repro.core.errors.ConfigError` semantics so
  API clients always learn *which* knob was wrong.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

#: default cap on one request's header block (request line included)
MAX_HEADER_BYTES = 16 * 1024

#: default cap on one request body
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Content Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """One HTTP-visible failure: status, message, optional field name.

    ``field`` names the query parameter / body field the message is
    about (the :class:`~repro.core.errors.ConfigError` convention
    carried onto the wire); ``headers`` adds response headers such as
    ``Retry-After``; ``close`` forces the connection shut after the
    error is written (set for framing errors, where the remaining
    stream bytes cannot be re-synchronized).
    """

    def __init__(
        self,
        status: int,
        message: str,
        field: Optional[str] = None,
        headers: Tuple[Tuple[str, str], ...] = (),
        close: bool = False,
    ):
        self.status = int(status)
        self.message = str(message)
        self.field = field
        self.headers = tuple(headers)
        self.close = bool(close)
        prefix = f"{field}: " if field else ""
        super().__init__(f"{status} {prefix}{message}")

    def payload(self) -> dict:
        """The JSON error body every failed request carries."""
        error = {"status": self.status, "message": self.message}
        if self.field is not None:
            error["field"] = self.field
        return {"error": error}


@dataclass(frozen=True)
class Request:
    """One parsed request, ready for routing."""

    method: str
    path: str
    #: decoded query parameters, each name mapped to its value list
    query: Dict[str, List[str]] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    keep_alive: bool = True

    def param(self, name: str) -> Optional[str]:
        """The parameter's single value; 400 when it was repeated."""
        values = self.query.get(name)
        if values is None:
            return None
        if len(values) != 1:
            raise HttpError(
                400, f"parameter given {len(values)} times; give it once",
                field=name,
            )
        return values[0]

    def json(self) -> dict:
        """The body decoded as a JSON object; 400 when it is not one."""
        try:
            payload = json.loads(self.body)
        except (ValueError, UnicodeDecodeError):
            raise HttpError(
                400, "body must be a JSON object", field="body"
            ) from None
        if not isinstance(payload, dict):
            raise HttpError(
                400, "body must be a JSON object", field="body"
            )
        return payload


async def read_request(
    reader: asyncio.StreamReader,
    max_header_bytes: int = MAX_HEADER_BYTES,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> Optional[Request]:
    """Read one request off the stream; None on a clean end-of-stream.

    Raises :class:`HttpError` for anything malformed or over a limit —
    the caller writes the error response and, when ``error.close`` says
    so, drops the connection.  The reader's own ``limit`` must be at
    least ``max_header_bytes`` (``serve`` passes it to
    ``asyncio.start_server``).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as eof:
        if not eof.partial.strip():
            return None  # clean close between requests
        raise HttpError(
            400, "connection closed mid-request", close=True
        ) from None
    except asyncio.LimitOverrunError:
        raise HttpError(
            431, f"header block exceeds {max_header_bytes} bytes",
            close=True,
        ) from None
    if len(head) > max_header_bytes:
        raise HttpError(
            431, f"header block exceeds {max_header_bytes} bytes",
            close=True,
        )
    try:
        lines = head.decode("latin-1").split("\r\n")
        method, target, version = lines[0].split(" ", 2)
    except ValueError:
        raise HttpError(400, "malformed request line", close=True) from None
    if not version.startswith("HTTP/1."):
        raise HttpError(
            501, f"unsupported protocol {version!r}", close=True
        )
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise HttpError(400, f"malformed header {line!r}", close=True)
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise HttpError(
            501, "chunked request bodies are not supported; send "
            "Content-Length-framed JSON", close=True,
        )
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
            if length < 0:
                raise ValueError
        except ValueError:
            raise HttpError(
                400, f"invalid Content-Length {length_text!r}", close=True
            ) from None
        if length > max_body_bytes:
            raise HttpError(
                413,
                f"body of {length} bytes exceeds the {max_body_bytes}-byte "
                f"limit; split the report batch",
                close=True,
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HttpError(
                    400, "connection closed mid-body", close=True
                ) from None
    elif method.upper() in ("POST", "PUT", "PATCH"):
        raise HttpError(
            411, "POST requests must carry a Content-Length header"
        )

    split = urlsplit(target)
    connection = headers.get("connection", "").lower()
    if version == "HTTP/1.0":
        keep_alive = connection == "keep-alive"
    else:
        keep_alive = connection != "close"
    return Request(
        method=method.upper(),
        path=split.path,
        query=parse_qs(split.query, keep_blank_values=True),
        headers=headers,
        body=body,
        keep_alive=keep_alive,
    )


def response_bytes(
    status: int,
    payload: object,
    keep_alive: bool = True,
    headers: Tuple[Tuple[str, str], ...] = (),
) -> bytes:
    """Serialize one JSON response, Content-Length framed."""
    body = json.dumps(payload).encode("utf-8") + b"\n"
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in headers)
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def error_bytes(error: HttpError, keep_alive: bool = True) -> bytes:
    """Serialize one :class:`HttpError` as its JSON response."""
    return response_bytes(
        error.status,
        error.payload(),
        keep_alive=keep_alive and not error.close,
        headers=error.headers,
    )
