"""A minimal asyncio HTTP/1.1 client for the front door.

Just enough to drive :class:`~repro.server.app.TelemetryServer` from the
load-generator bench, the test suite, and the CI smoke — one persistent
connection per :class:`ServerClient`, JSON in, JSON out, no third-party
HTTP stack (the same no-new-deps discipline as the server).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass
class ClientResponse:
    """One parsed response: status, headers (lower-cased names), JSON body."""

    status: int
    headers: Dict[str, str]
    body: dict

    def retry_after(self) -> Optional[float]:
        """The ``Retry-After`` delay in seconds, if the server sent one."""
        text = self.headers.get("retry-after")
        if text is None:
            return None
        try:
            return float(text)
        except ValueError:
            return None


class ServerClient:
    """One keep-alive connection to a :class:`TelemetryServer`."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "ServerClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "ServerClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def request(
        self, method: str, target: str, payload: Optional[dict] = None
    ) -> ClientResponse:
        """One request/response round trip, reconnecting after a close.

        The server closes the connection on framing errors and when a
        response says ``Connection: close``; the next call transparently
        reopens the socket, so callers can treat the client as a durable
        handle.
        """
        if self._writer is None or self._writer.is_closing():
            await self.connect()
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        lines = [
            f"{method} {target} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
        ]
        if payload is not None or method in ("POST", "PUT", "PATCH"):
            lines.append(f"Content-Length: {len(body)}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        self._writer.write(head + body)
        await self._writer.drain()
        status, headers, raw = await self._read_response()
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return ClientResponse(
            status=status, headers=headers,
            body=json.loads(raw) if raw else {},
        )

    async def _read_response(self) -> Tuple[int, Dict[str, str], bytes]:
        head = await self._reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        return status, headers, raw

    # -- convenience verbs used by the bench and the smoke ----------------

    async def health(self) -> dict:
        return (await self.request("GET", "/api/health")).body

    async def config(self) -> dict:
        return (await self.request("GET", "/api/config")).body

    async def submit(self, values) -> ClientResponse:
        return await self.request(
            "POST", "/api/reports", {"values": [int(v) for v in values]}
        )

    async def close_epoch(self) -> dict:
        response = await self.request("POST", "/api/epochs")
        if response.status != 200:
            raise RuntimeError(
                f"epoch close failed with HTTP {response.status}: "
                f"{response.body}"
            )
        return response.body

    async def estimates(self, **params) -> dict:
        query = "&".join(f"{k}={v}" for k, v in params.items())
        target = "/api/estimates" + (f"?{query}" if query else "")
        response = await self.request("GET", target)
        if response.status != 200:
            raise RuntimeError(
                f"estimate query failed with HTTP {response.status}: "
                f"{response.body}"
            )
        return response.body


async def fetch_all_estimates(client: ServerClient, limit: int = 200) -> list:
    """Walk the keyset cursor until exhaustion; returns the full item list."""
    items = []
    cursor = None
    while True:
        params = {"limit": limit}
        if cursor is not None:
            params["cursor"] = cursor
        page = await client.estimates(**params)
        items.extend(page["items"])
        cursor = page["page"]["next_cursor"]
        if not page["page"]["has_more"] or cursor is None:
            return items
