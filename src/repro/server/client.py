"""A minimal asyncio HTTP/1.1 client for the front door.

Just enough to drive :class:`~repro.server.app.TelemetryServer` from the
load-generator bench, the test suite, and the CI smoke — one persistent
connection per :class:`ServerClient`, JSON in, JSON out, no third-party
HTTP stack (the same no-new-deps discipline as the server).
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple


@dataclass
class ClientResponse:
    """One parsed response: status, headers (lower-cased names), JSON body."""

    status: int
    headers: Dict[str, str]
    body: dict

    def retry_after(self) -> Optional[float]:
        """The ``Retry-After`` delay in seconds, if the server sent one."""
        text = self.headers.get("retry-after")
        if text is None:
            return None
        try:
            return float(text)
        except ValueError:
            return None


class ServerClient:
    """One keep-alive connection to a :class:`TelemetryServer`."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "ServerClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "ServerClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def request(
        self, method: str, target: str, payload: Optional[dict] = None
    ) -> ClientResponse:
        """One request/response round trip, reconnecting after a close.

        The server closes the connection on framing errors and when a
        response says ``Connection: close``; the next call transparently
        reopens the socket, so callers can treat the client as a durable
        handle.
        """
        if self._writer is None or self._writer.is_closing():
            await self.connect()
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        lines = [
            f"{method} {target} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
        ]
        if payload is not None or method in ("POST", "PUT", "PATCH"):
            lines.append(f"Content-Length: {len(body)}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        self._writer.write(head + body)
        await self._writer.drain()
        status, headers, raw = await self._read_response()
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return ClientResponse(
            status=status, headers=headers,
            body=json.loads(raw) if raw else {},
        )

    async def _read_response(self) -> Tuple[int, Dict[str, str], bytes]:
        head = await self._reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        return status, headers, raw

    async def request_with_retry(
        self,
        method: str,
        target: str,
        payload: Optional[dict] = None,
        *,
        max_attempts: int = 8,
        base_delay_s: float = 0.05,
        max_delay_s: float = 2.0,
        retry_statuses: Tuple[int, ...] = (429, 503),
        jitter: Optional[Callable[[], float]] = None,
        on_retry: Optional[Callable[[ClientResponse, float], None]] = None,
    ) -> ClientResponse:
        """:meth:`request` with capped exponential backoff on pushback.

        Retries responses whose status is in ``retry_statuses`` (by
        default the server's two load-shedding answers: 429
        backpressure and 503 during recovery) up to ``max_attempts``
        total attempts — never an unbounded spin.  The delay before
        attempt ``k+1`` is ``min(max_delay_s, base_delay_s * 2**k)``,
        floored by the server's ``Retry-After`` when one is advertised
        (still capped at ``max_delay_s``), and jittered to half-to-full
        so a fleet of backed-off clients does not re-arrive in lockstep.
        ``jitter`` injects the uniform draw (a ``[0, 1)`` callable) for
        deterministic tests; the default draws from the OS entropy pool
        — retry scheduling is wall-clock territory, never part of the
        reproducible estimate path.  ``on_retry(response, delay_s)``
        fires before each sleep (benches count their 429s there).

        Returns the last response, whatever its status: exhausting the
        retry budget hands the still-refused response to the caller
        rather than guessing how to fail.
        """
        draw = jitter if jitter is not None else random.SystemRandom().random
        response = await self.request(method, target, payload)
        for attempt in range(max_attempts - 1):
            if response.status not in retry_statuses:
                return response
            delay = min(max_delay_s, base_delay_s * 2.0 ** attempt)
            advertised = response.retry_after()
            if advertised is not None:
                delay = min(max_delay_s, max(delay, advertised))
            delay *= 0.5 + draw() * 0.5
            if on_retry is not None:
                on_retry(response, delay)
            await asyncio.sleep(delay)
            response = await self.request(method, target, payload)
        return response

    # -- convenience verbs used by the bench and the smoke ----------------

    async def health(self) -> dict:
        return (await self.request("GET", "/api/health")).body

    async def config(self) -> dict:
        return (await self.request("GET", "/api/config")).body

    async def submit(self, values) -> ClientResponse:
        return await self.request(
            "POST", "/api/reports", {"values": [int(v) for v in values]}
        )

    async def close_epoch(self) -> dict:
        response = await self.request("POST", "/api/epochs")
        if response.status != 200:
            raise RuntimeError(
                f"epoch close failed with HTTP {response.status}: "
                f"{response.body}"
            )
        return response.body

    async def estimates(self, **params) -> dict:
        query = "&".join(f"{k}={v}" for k, v in params.items())
        target = "/api/estimates" + (f"?{query}" if query else "")
        response = await self.request("GET", target)
        if response.status != 200:
            raise RuntimeError(
                f"estimate query failed with HTTP {response.status}: "
                f"{response.body}"
            )
        return response.body


async def fetch_all_estimates(client: ServerClient, limit: int = 200) -> list:
    """Walk the keyset cursor until exhaustion; returns the full item list."""
    items = []
    cursor = None
    while True:
        params = {"limit": limit}
        if cursor is not None:
            params["cursor"] = cursor
        page = await client.estimates(**params)
        items.extend(page["items"])
        cursor = page["page"]["next_cursor"]
        if not page["page"]["has_more"] or cursor is None:
            return items
