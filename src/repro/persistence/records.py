"""Record types and serialization helpers of the durable-state subsystem.

These are the values that cross the :class:`~repro.persistence.store.
StateStore` boundary.  They deliberately mirror the streaming service's
own state — the ledger charges, the flush log, the ingest-side mutable
state — without importing it at module level: the service pipelines
import this package to get their default store, so everything here that
needs a service type resolves it lazily at call time.

The write-ahead protocol (see :mod:`repro.persistence.store`) moves four
kinds of records:

* :class:`FlushRecord` — one carved flush *before* release: the batch
  identity (global sequence, epoch, trigger, sizes), its encoded genuine
  reports, and the accountant's verdict (an admitted charge or a
  rejection reason).
* :class:`IngestCheckpoint` — the ingest-side mutable state after a
  submission: the ingest generator state, the buffer's epoch /
  next-sequence counter / pending remainder, and the submit counter a
  feeder uses as its resume cursor.
* :class:`StoredFlush` — one flush row read back at resume time, in
  whichever protocol stage it was committed (``charged`` / ``released``
  / ``rejected``).
* :class:`RunSnapshot` — everything :meth:`StateStore.load_run` returns:
  enough to rebuild a pipeline bit-identical to the crashed one.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional, Tuple

import numpy as np


class StateStoreError(RuntimeError):
    """A state store was used out of protocol (no run, duplicate run,
    release of an unknown flush, corrupt snapshot)."""


@dataclass(frozen=True)
class FlushRecord:
    """One carved flush and the accountant's verdict, written ahead of
    release.

    ``sequence`` is :attr:`repro.service.buffer.FlushBatch.sequence` —
    the single authoritative counter shared by the release-RNG discipline
    (:func:`repro.service.pipeline.flush_rng`) and the persisted flush
    log, which is what lets a resumed run replay a pending release with
    randomness bit-identical to the uninterrupted run.
    """

    sequence: int
    epoch: int
    trigger: str
    n_reports: int
    n_fake: int
    #: ordinal-encoded genuine reports (owned, read-only); kept only
    #: until the release commits
    reports: np.ndarray
    #: admitted charge, or None when rejected
    charge_eps: Optional[float]
    charge_delta: Optional[float]
    charge_label: Optional[str]
    #: the accountant's refusal message when rejected
    reject_reason: Optional[str]

    @property
    def admitted(self) -> bool:
        return self.charge_eps is not None


@dataclass(frozen=True)
class IngestCheckpoint:
    """Ingest-side mutable state, committed with every durable write.

    ``pending_chunks`` holds references to the buffer's own chunks (the
    buffer never mutates a chunk in place, only rebinds its list), so
    building a checkpoint is O(number of chunks), not O(pending
    reports); serializing backends merge at write time.
    """

    #: ``rng.bit_generator.state`` of the ingest generator
    rng_state: dict
    buffer_epoch: int
    #: the buffer's next global flush sequence number
    next_sequence: int
    pending_chunks: tuple
    pending_count: int
    #: client submissions applied so far — the feeder's resume cursor
    n_submits: int

    def merged_remainder(self) -> np.ndarray:
        """The pending remainder as one array (empty int64 when none)."""
        if not self.pending_chunks:
            return np.empty(0, dtype=np.int64)
        if len(self.pending_chunks) == 1:
            return np.asarray(self.pending_chunks[0])
        return np.concatenate(self.pending_chunks)


@dataclass(frozen=True)
class StoredFlush:
    """One flush row read back from a store, at its committed stage."""

    sequence: int
    epoch: int
    trigger: str
    n_reports: int
    n_fake: int
    #: ``"charged"`` (write-ahead committed, release pending),
    #: ``"released"``, or ``"rejected"``
    status: str
    #: encoded genuine reports — present only while ``charged``
    reports: Optional[np.ndarray]
    #: folded support counts — present only once ``released``
    counts: Optional[np.ndarray]
    reject_reason: Optional[str]


@dataclass(frozen=True)
class RunSnapshot:
    """Everything needed to resume a run bit-identical to the original."""

    #: the deployment's :class:`~repro.service.pipeline.StreamConfig`
    config: object
    #: the deployment's release-stream root entropy (8 uint32 words)
    release_entropy: tuple
    rng_state: dict
    buffer_epoch: int
    next_sequence: int
    #: merged pending remainder (owned)
    remainder: np.ndarray
    n_submits: int
    #: the admitted ledger, in charge order
    #: (:class:`~repro.service.accountant.BudgetCharge` instances)
    charges: tuple
    #: every flush row, in sequence order
    flushes: Tuple[StoredFlush, ...]
    #: closed epochs, in order
    #: (:class:`~repro.service.pipeline.EpochReport` instances)
    epoch_reports: tuple


def config_to_dict(config) -> dict:
    """Serialize a ``StreamConfig`` (plan included) to plain JSON types."""
    payload = asdict(config)
    # Frozen-dataclass floats/ints/strs only; asdict flattened the plan.
    return payload


def config_from_dict(payload: dict):
    """Rebuild a ``StreamConfig`` — re-running its full validation."""
    from ..core.params import PeosPlan
    from ..service.pipeline import StreamConfig

    payload = dict(payload)
    try:
        plan = PeosPlan(**payload.pop("plan"))
        return StreamConfig(plan=plan, **payload)
    except TypeError as mismatch:
        raise StateStoreError(
            f"stored configuration does not match this version's "
            f"StreamConfig/PeosPlan fields: {mismatch}"
        ) from mismatch


def charges_from_rows(rows):
    """Rebuild ``BudgetCharge`` ledger entries from (eps, delta, label)."""
    from ..service.accountant import BudgetCharge

    return tuple(
        BudgetCharge(float(eps), float(delta), str(label))
        for eps, delta, label in rows
    )


def epoch_report_from_row(row: dict):
    """Rebuild one ``EpochReport`` from its stored mapping."""
    from ..service.pipeline import EpochReport

    return EpochReport(**row)


def generator_from_state(state: dict) -> np.random.Generator:
    """Reconstruct an ingest generator from its persisted state.

    Works for any numpy bit generator (PCG64, Philox, ...) named in the
    state dict — the restored generator continues the exact stream the
    checkpointed one would have produced.
    """
    name = state.get("bit_generator")
    bitgen_cls = getattr(np.random, str(name), None)
    if bitgen_cls is None:
        raise StateStoreError(
            f"snapshot uses unknown numpy bit generator {name!r}"
        )
    generator = np.random.Generator(bitgen_cls())
    generator.bit_generator.state = state
    return generator
