"""Crash-safe SQLite state store (stdlib ``sqlite3``, WAL journal).

One run per database file.  The connection idiom follows the telemetry
storage layers surveyed in SNIPPETS 1-2: ``journal_mode=WAL`` so readers
never block the writer and a torn process leaves a consistent database,
``foreign_keys=ON`` so charge rows cannot outlive their flush,
``synchronous=NORMAL`` (durability to the WAL on every commit, fsync at
checkpoints — the right trade for a telemetry sink), and a generous
``busy_timeout`` instead of immediate ``SQLITE_BUSY`` failures.

Transactions are explicit (``isolation_level=None`` + ``BEGIN
IMMEDIATE``): the write-ahead protocol's atomicity unit is *one
submission*, not one statement, so every carved flush of a submit — its
charge or rejection — and the post-submit ingest checkpoint commit
together or not at all.

Schema (version 1):

* ``meta(key, value)`` — schema version, the JSON ``StreamConfig``
  (plan included), the release-stream root entropy;
* ``flushes(sequence PK, epoch, trigger_kind, n_reports, n_fake,
  status, reports, counts, reject_reason)`` — the flush log; ``status``
  walks ``charged`` → ``released`` (or is terminally ``rejected``), raw
  reports are kept only while ``charged`` and replaced by folded counts
  on release;
* ``charges(idx PK, flush_sequence FK, eps, delta, label)`` — the
  accountant's admitted ledger, in charge order;
* ``epochs(epoch PK, ...metrics..., estimates)`` — one row per closed
  epoch with its estimate snapshot;
* ``checkpoint(id=1, rng_state, buffer_epoch, next_sequence, remainder,
  n_submits)`` — the single-row ingest checkpoint.

Arrays are stored as raw little-endian blobs (int64 reports/remainder,
float64 counts/estimates); floats live in ``REAL`` columns, which are
IEEE-754 doubles, so budget arithmetic round-trips exactly.
"""

from __future__ import annotations

import json
import os
import sqlite3
from pathlib import Path
from typing import Sequence

import numpy as np

from ..core.errors import ConfigError
from ..faults import fail_point
from .records import (
    FlushRecord,
    IngestCheckpoint,
    RunSnapshot,
    StateStoreError,
    StoredFlush,
    charges_from_rows,
    config_from_dict,
    config_to_dict,
    epoch_report_from_row,
)
from .store import StateStore

SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS flushes (
    sequence      INTEGER PRIMARY KEY,
    epoch         INTEGER NOT NULL,
    trigger_kind  TEXT    NOT NULL,
    n_reports     INTEGER NOT NULL,
    n_fake        INTEGER NOT NULL,
    status        TEXT    NOT NULL
                  CHECK (status IN ('charged', 'released', 'rejected')),
    reports       BLOB,
    counts        BLOB,
    reject_reason TEXT
);
CREATE TABLE IF NOT EXISTS charges (
    idx            INTEGER PRIMARY KEY,
    flush_sequence INTEGER NOT NULL REFERENCES flushes(sequence),
    eps            REAL    NOT NULL,
    delta          REAL    NOT NULL,
    label          TEXT    NOT NULL
);
CREATE TABLE IF NOT EXISTS epochs (
    epoch           INTEGER PRIMARY KEY,
    n_flushes       INTEGER NOT NULL,
    n_rejected      INTEGER NOT NULL,
    n_reports       INTEGER NOT NULL,
    n_fake          INTEGER NOT NULL,
    flush_latency_s REAL    NOT NULL,
    reports_per_sec REAL    NOT NULL,
    eps_spent       REAL    NOT NULL,
    delta_spent     REAL    NOT NULL,
    estimates       BLOB    NOT NULL
);
CREATE TABLE IF NOT EXISTS checkpoint (
    id            INTEGER PRIMARY KEY CHECK (id = 1),
    rng_state     TEXT    NOT NULL,
    buffer_epoch  INTEGER NOT NULL,
    next_sequence INTEGER NOT NULL,
    remainder     BLOB    NOT NULL,
    n_submits     INTEGER NOT NULL
);
"""


def _validated_path(path) -> Path:
    """Fail early, with the offending field named, on an unusable path."""
    path = Path(path)
    parent = path.parent
    if not parent.exists():
        raise ConfigError(
            "state_db", f"parent directory does not exist: {parent}"
        )
    if not parent.is_dir():
        raise ConfigError(
            "state_db", f"parent is not a directory: {parent}"
        )
    if path.exists():
        if path.is_dir():
            raise ConfigError("state_db", f"is a directory: {path}")
        if not os.access(path, os.W_OK):
            raise ConfigError("state_db", f"file is not writable: {path}")
    elif not os.access(parent, os.W_OK):
        raise ConfigError(
            "state_db", f"parent directory is not writable: {parent}"
        )
    return path


def _int64_blob(array) -> bytes:
    return np.ascontiguousarray(array, dtype=np.int64).tobytes()


def _float64_blob(array) -> bytes:
    return np.ascontiguousarray(array, dtype=np.float64).tobytes()


def _int64_from_blob(blob) -> np.ndarray:
    return np.frombuffer(blob, dtype=np.int64).copy()


def _float64_from_blob(blob) -> np.ndarray:
    return np.frombuffer(blob, dtype=np.float64).copy()


def _rng_state_json(state: dict) -> str:
    try:
        return json.dumps(state)
    except TypeError as unserializable:
        raise StateStoreError(
            f"ingest generator state of {state.get('bit_generator')!r} is "
            f"not JSON-serializable; durable persistence supports "
            f"PCG64-family bit generators (numpy's default_rng)"
        ) from unserializable


class SqliteStateStore(StateStore):
    """Durable :class:`~repro.persistence.store.StateStore` on one file."""

    durable = True

    def __init__(self, path):
        self.path = _validated_path(path)
        try:
            self._conn = sqlite3.connect(
                str(self.path), isolation_level=None
            )
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA foreign_keys=ON")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA busy_timeout=30000")
            self._conn.executescript(_SCHEMA)
        except sqlite3.Error as failure:
            raise ConfigError(
                "state_db", f"cannot open SQLite database {self.path}: "
                f"{failure}"
            ) from failure
        version = self._meta("schema_version")
        if version is not None and int(version) != SCHEMA_VERSION:
            raise StateStoreError(
                f"{self.path} uses schema version {version}, this build "
                f"writes version {SCHEMA_VERSION}"
            )

    # -- plumbing ----------------------------------------------------------

    def _meta(self, key: str):
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else row[0]

    def _begin(self) -> None:
        self._conn.execute("BEGIN IMMEDIATE")

    def _commit(self) -> None:
        # Chaos seam: a failure here leaves the open transaction to the
        # caller's rollback, so an injected commit fault exercises the
        # same all-or-nothing recovery path as a real disk error.
        fail_point("store.commit")
        self._conn.execute("COMMIT")

    def _rollback(self) -> None:
        try:
            self._conn.execute("ROLLBACK")
        except sqlite3.Error:  # pragma: no cover - already rolled back
            pass

    def _write_checkpoint(self, checkpoint: IngestCheckpoint) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO checkpoint "
            "(id, rng_state, buffer_epoch, next_sequence, remainder, "
            " n_submits) VALUES (1, ?, ?, ?, ?, ?)",
            (
                _rng_state_json(checkpoint.rng_state),
                int(checkpoint.buffer_epoch),
                int(checkpoint.next_sequence),
                _int64_blob(checkpoint.merged_remainder()),
                int(checkpoint.n_submits),
            ),
        )

    def close(self) -> None:
        self._conn.close()

    # -- advisory tuning ---------------------------------------------------

    def record_tuning(self, name: str, payload: dict) -> None:
        """Tuning records live as ``tuning:<name>`` JSON rows in ``meta``.

        Deliberately outside the write-ahead protocol: a single
        autocommit upsert, allowed before ``begin_run`` (calibration
        typically runs while the deployment is being planned) and freely
        overwritten on recalibration.
        """
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            (f"tuning:{name}", json.dumps(payload)),
        )

    def load_tuning(self, name: str):
        value = self._meta(f"tuning:{name}")
        return None if value is None else json.loads(value)

    # -- protocol ----------------------------------------------------------

    def has_run(self) -> bool:
        return self._meta("config") is not None

    def begin_run(
        self, config, release_entropy, checkpoint: IngestCheckpoint
    ) -> None:
        if self.has_run():
            raise StateStoreError(
                f"{self.path} already holds a run; resume it (--resume / "
                f"Pipeline.resume) instead of starting a new one"
            )
        self._begin()
        try:
            self._conn.executemany(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                [
                    ("schema_version", str(SCHEMA_VERSION)),
                    ("config", json.dumps(config_to_dict(config))),
                    (
                        "release_entropy",
                        json.dumps([int(w) for w in release_entropy]),
                    ),
                ],
            )
            self._write_checkpoint(checkpoint)
            self._commit()
        except BaseException:
            self._rollback()
            raise

    def record_ingest(self, checkpoint: IngestCheckpoint) -> None:
        # Single statement: autocommit mode makes it atomic on its own.
        self._write_checkpoint(checkpoint)

    def record_flushes(
        self,
        records: Sequence[FlushRecord],
        checkpoint: IngestCheckpoint,
    ) -> None:
        self._begin()
        try:
            for record in records:
                self._conn.execute(
                    "INSERT INTO flushes (sequence, epoch, trigger_kind, "
                    "n_reports, n_fake, status, reports, counts, "
                    "reject_reason) VALUES (?, ?, ?, ?, ?, ?, ?, NULL, ?)",
                    (
                        int(record.sequence),
                        int(record.epoch),
                        record.trigger,
                        int(record.n_reports),
                        int(record.n_fake),
                        "charged" if record.admitted else "rejected",
                        _int64_blob(record.reports)
                        if record.admitted else None,
                        record.reject_reason,
                    ),
                )
                if record.admitted:
                    self._conn.execute(
                        "INSERT INTO charges (flush_sequence, eps, delta, "
                        "label) VALUES (?, ?, ?, ?)",
                        (
                            int(record.sequence),
                            float(record.charge_eps),
                            float(record.charge_delta),
                            record.charge_label,
                        ),
                    )
            self._write_checkpoint(checkpoint)
            self._commit()
        except BaseException:
            self._rollback()
            raise

    def record_release(self, sequence: int, counts: np.ndarray) -> None:
        cursor = self._conn.execute(
            "UPDATE flushes SET status = 'released', counts = ?, "
            "reports = NULL WHERE sequence = ? AND status = 'charged'",
            (_float64_blob(counts), int(sequence)),
        )
        if cursor.rowcount != 1:
            row = self._conn.execute(
                "SELECT status FROM flushes WHERE sequence = ?",
                (int(sequence),),
            ).fetchone()
            if row is None:
                raise StateStoreError(
                    f"flush {sequence} was never charged"
                )
            raise StateStoreError(
                f"flush {sequence} is {row[0]!r}; only a charged flush "
                f"can be released"
            )

    def record_epoch(
        self, report, estimates: np.ndarray, checkpoint: IngestCheckpoint
    ) -> None:
        self._begin()
        try:
            self._conn.execute(
                "INSERT INTO epochs (epoch, n_flushes, n_rejected, "
                "n_reports, n_fake, flush_latency_s, reports_per_sec, "
                "eps_spent, delta_spent, estimates) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    int(report.epoch),
                    int(report.n_flushes),
                    int(report.n_rejected),
                    int(report.n_reports),
                    int(report.n_fake),
                    float(report.flush_latency_s),
                    float(report.reports_per_sec),
                    float(report.eps_spent),
                    float(report.delta_spent),
                    _float64_blob(estimates),
                ),
            )
            self._write_checkpoint(checkpoint)
            self._commit()
        except BaseException:
            self._rollback()
            raise

    # -- recovery ----------------------------------------------------------

    def load_run(self) -> RunSnapshot:
        config_json = self._meta("config")
        if config_json is None:
            raise StateStoreError(f"{self.path} holds no run")
        config = config_from_dict(json.loads(config_json))
        release_entropy = tuple(
            int(w) for w in json.loads(self._meta("release_entropy"))
        )
        checkpoint_row = self._conn.execute(
            "SELECT rng_state, buffer_epoch, next_sequence, remainder, "
            "n_submits FROM checkpoint WHERE id = 1"
        ).fetchone()
        if checkpoint_row is None:
            raise StateStoreError(f"{self.path} has no ingest checkpoint")
        flushes = tuple(
            StoredFlush(
                sequence=int(sequence),
                epoch=int(epoch),
                trigger=trigger_kind,
                n_reports=int(n_reports),
                n_fake=int(n_fake),
                status=status,
                reports=(
                    _int64_from_blob(reports)
                    if reports is not None else None
                ),
                counts=(
                    _float64_from_blob(counts)
                    if counts is not None else None
                ),
                reject_reason=reject_reason,
            )
            for sequence, epoch, trigger_kind, n_reports, n_fake, status,
                reports, counts, reject_reason
            in self._conn.execute(
                "SELECT sequence, epoch, trigger_kind, n_reports, n_fake, "
                "status, reports, counts, reject_reason FROM flushes "
                "ORDER BY sequence"
            )
        )
        charges = charges_from_rows(
            self._conn.execute(
                "SELECT eps, delta, label FROM charges ORDER BY idx"
            ).fetchall()
        )
        epoch_reports = tuple(
            epoch_report_from_row({
                "epoch": int(epoch),
                "n_flushes": int(n_flushes),
                "n_rejected": int(n_rejected),
                "n_reports": int(n_reports),
                "n_fake": int(n_fake),
                "flush_latency_s": float(flush_latency_s),
                "reports_per_sec": float(reports_per_sec),
                "eps_spent": float(eps_spent),
                "delta_spent": float(delta_spent),
            })
            for epoch, n_flushes, n_rejected, n_reports, n_fake,
                flush_latency_s, reports_per_sec, eps_spent, delta_spent
            in self._conn.execute(
                "SELECT epoch, n_flushes, n_rejected, n_reports, n_fake, "
                "flush_latency_s, reports_per_sec, eps_spent, delta_spent "
                "FROM epochs ORDER BY epoch"
            )
        )
        return RunSnapshot(
            config=config,
            release_entropy=release_entropy,
            rng_state=json.loads(checkpoint_row[0]),
            buffer_epoch=int(checkpoint_row[1]),
            next_sequence=int(checkpoint_row[2]),
            remainder=_int64_from_blob(checkpoint_row[3]),
            n_submits=int(checkpoint_row[4]),
            charges=charges,
            flushes=flushes,
            epoch_reports=epoch_reports,
        )

    def estimate_snapshot(self, epoch: int) -> np.ndarray:
        """The estimate vector committed when ``epoch`` closed."""
        row = self._conn.execute(
            "SELECT estimates FROM epochs WHERE epoch = ?", (int(epoch),)
        ).fetchone()
        if row is None:
            raise StateStoreError(f"no epoch {epoch} in {self.path}")
        return _float64_from_blob(row[0])

    def epoch_log(self):
        """Direct read of ``(epoch, estimates)`` rows, no full recovery."""
        return [
            (int(epoch), _float64_from_blob(estimates))
            for epoch, estimates in self._conn.execute(
                "SELECT epoch, estimates FROM epochs ORDER BY epoch"
            )
        ]
