"""Durable state for the streaming service: pluggable ``StateStore``.

The streaming pipelines journal every privacy-relevant state change —
budget charges, the flush log keyed by the global flush sequence, the
buffered remainder, epoch reports with estimate snapshots — through a
:class:`StateStore`.  :class:`MemoryStateStore` (the default) keeps it
in process memory at zero overhead; :class:`SqliteStateStore` makes it
crash-safe on one SQLite file, from which ``TelemetryPipeline.resume``
/ ``ShardedPipeline.resume`` rebuild a run that never double-spends,
never re-releases, and continues bit-identical to an uninterrupted run
at the same seed.
"""

from .records import (
    FlushRecord,
    IngestCheckpoint,
    RunSnapshot,
    StateStoreError,
    StoredFlush,
)
from .sqlite import SCHEMA_VERSION, SqliteStateStore
from .store import MemoryStateStore, StateStore

__all__ = [
    "FlushRecord",
    "IngestCheckpoint",
    "MemoryStateStore",
    "RunSnapshot",
    "SCHEMA_VERSION",
    "SqliteStateStore",
    "StateStore",
    "StateStoreError",
    "StoredFlush",
]
