"""The pluggable ``StateStore`` interface and the zero-overhead default.

A state store receives the streaming service's durable writes in the
order the write-ahead protocol produces them:

1. ``begin_run`` — once, when a fresh pipeline is constructed: the
   immutable deployment identity (config + release-stream entropy) and
   the initial ingest checkpoint.
2. ``record_flushes`` — one call per carving submission, committing
   *all* of its flush records (each an admitted ``BudgetCharge`` or a
   rejection) together with the post-submit ingest checkpoint, in a
   single transaction, *before* any of those flushes is released.
3. ``record_release`` — after a flush's counts have been folded:
   transitions the row ``charged`` → ``released`` and drops its raw
   reports (the counts are sufficient for recovery, and cheaper).
4. ``record_epoch`` — when an epoch closes: its ``EpochReport``, the
   aggregator's estimate snapshot, and the post-close checkpoint.

``record_ingest`` covers the no-carve case (a submit that only buffers)
so the ingest generator state on disk never lags the reports it has
already consumed.

Recovery reads everything back with ``load_run``; the pipelines'
``resume`` classmethods do the rest (see ``repro.service.pipeline``).

``MemoryStateStore`` is the default wired into every pipeline: it keeps
references in process memory (no serialization, no copies on the hot
path) purely so both pipelines speak one protocol, and doubles as the
reference implementation the SQLite backend is tested against.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence

import numpy as np

from .records import (
    FlushRecord,
    IngestCheckpoint,
    RunSnapshot,
    StateStoreError,
    StoredFlush,
)


class StateStore(ABC):
    """Where a streaming pipeline's durable state lives.

    ``durable`` advertises whether the store survives the process; the
    pipelines gate persistence-incompatible features (crypto backends
    whose RNG state is not serializable, ``keep_reports``) on it.
    """

    durable: bool = False

    @abstractmethod
    def begin_run(
        self, config, release_entropy, checkpoint: IngestCheckpoint
    ) -> None:
        """Record a fresh run's identity; fails if a run already exists."""

    @abstractmethod
    def has_run(self) -> bool:
        """Whether this store already holds a run."""

    @abstractmethod
    def record_ingest(self, checkpoint: IngestCheckpoint) -> None:
        """Commit a buffering-only submission's ingest checkpoint."""

    @abstractmethod
    def record_flushes(
        self,
        records: Sequence[FlushRecord],
        checkpoint: IngestCheckpoint,
    ) -> None:
        """Write-ahead commit: every carved flush of one submission (its
        charge or rejection included) plus the post-submit checkpoint,
        atomically, before any release happens."""

    @abstractmethod
    def record_release(self, sequence: int, counts: np.ndarray) -> None:
        """Commit a release: the flush at ``sequence`` moves ``charged``
        → ``released`` and its folded support counts replace its raw
        reports."""

    @abstractmethod
    def record_epoch(
        self, report, estimates: np.ndarray, checkpoint: IngestCheckpoint
    ) -> None:
        """Commit a closed epoch's report and estimate snapshot."""

    @abstractmethod
    def load_run(self) -> RunSnapshot:
        """Read the whole run back for recovery."""

    def epoch_log(self) -> List[tuple]:
        """Every closed epoch's released estimates, in epoch order.

        Returns ``[(epoch, estimates), ...]`` — the read path behind the
        front door's ``GET /api/estimates``.  An empty store (or one
        whose run has closed no epochs yet) is an empty log, not an
        error.  The base implementation goes through :meth:`load_run`;
        stores with a cheaper direct path override it.
        """
        try:
            snapshot = self.load_run()
        except StateStoreError:
            return []
        return [
            (report.epoch, self.estimate_snapshot(report.epoch))
            for report in snapshot.epoch_reports
        ]

    def estimate_snapshot(self, epoch: int) -> np.ndarray:
        """The estimate vector committed when ``epoch`` closed."""
        raise NotImplementedError

    # -- advisory tuning ---------------------------------------------------
    #
    # Execution-tuning records (e.g. the kernel calibration from
    # ``repro.hashing.calibrate``) ride alongside the run but are *not*
    # part of the write-ahead protocol: they may be written before
    # ``begin_run``, survive independently of it, and only ever affect
    # how fast estimates are computed — never what they are.  The base
    # implementation keeps them in process memory; durable stores
    # override both methods.

    def record_tuning(self, name: str, payload: dict) -> None:
        """Persist one named advisory tuning record (JSON-compatible)."""
        if not hasattr(self, "_tuning_records"):
            self._tuning_records: Dict[str, dict] = {}
        self._tuning_records[name] = dict(payload)

    def load_tuning(self, name: str) -> Optional[dict]:
        """Read a tuning record back; ``None`` when never recorded."""
        return getattr(self, "_tuning_records", {}).get(name)

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release any underlying resources (idempotent)."""

    def __enter__(self) -> "StateStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class MemoryStateStore(StateStore):
    """In-process store: the zero-overhead default.

    Holds references only — flush reports are the buffer's owned
    read-only arrays and checkpoint chunks are never mutated in place,
    so nothing is copied or serialized on the hot path.  State dies with
    the process; ``load_run`` exists so the recovery machinery can be
    exercised (and the SQLite backend differentially tested) without
    touching disk.
    """

    durable = False

    def __init__(self) -> None:
        self._config = None
        self._release_entropy: Optional[tuple] = None
        self._flushes: Dict[int, StoredFlush] = {}
        self._charges: List[tuple] = []
        self._epoch_reports: List[object] = []
        self._estimates: Dict[int, np.ndarray] = {}
        self._checkpoint: Optional[IngestCheckpoint] = None

    def begin_run(
        self, config, release_entropy, checkpoint: IngestCheckpoint
    ) -> None:
        if self.has_run():
            raise StateStoreError(
                "store already holds a run; resume it instead of starting "
                "a new pipeline on the same store"
            )
        self._config = config
        self._release_entropy = tuple(
            int(word) for word in release_entropy
        )
        self._checkpoint = checkpoint

    def has_run(self) -> bool:
        return self._config is not None

    def _require_run(self) -> None:
        if not self.has_run():
            raise StateStoreError("store holds no run")

    def record_ingest(self, checkpoint: IngestCheckpoint) -> None:
        self._require_run()
        self._checkpoint = checkpoint

    def record_flushes(
        self,
        records: Sequence[FlushRecord],
        checkpoint: IngestCheckpoint,
    ) -> None:
        self._require_run()
        for record in records:
            if record.sequence in self._flushes:
                raise StateStoreError(
                    f"flush {record.sequence} already recorded"
                )
            if record.admitted:
                self._flushes[record.sequence] = StoredFlush(
                    sequence=record.sequence,
                    epoch=record.epoch,
                    trigger=record.trigger,
                    n_reports=record.n_reports,
                    n_fake=record.n_fake,
                    status="charged",
                    reports=record.reports,
                    counts=None,
                    reject_reason=None,
                )
                self._charges.append((
                    record.charge_eps,
                    record.charge_delta,
                    record.charge_label,
                ))
            else:
                self._flushes[record.sequence] = StoredFlush(
                    sequence=record.sequence,
                    epoch=record.epoch,
                    trigger=record.trigger,
                    n_reports=record.n_reports,
                    n_fake=record.n_fake,
                    status="rejected",
                    reports=None,
                    counts=None,
                    reject_reason=record.reject_reason,
                )
        self._checkpoint = checkpoint

    def record_release(self, sequence: int, counts: np.ndarray) -> None:
        self._require_run()
        row = self._flushes.get(sequence)
        if row is None:
            raise StateStoreError(f"flush {sequence} was never charged")
        if row.status != "charged":
            raise StateStoreError(
                f"flush {sequence} is {row.status!r}; only a charged "
                f"flush can be released"
            )
        self._flushes[sequence] = StoredFlush(
            sequence=row.sequence,
            epoch=row.epoch,
            trigger=row.trigger,
            n_reports=row.n_reports,
            n_fake=row.n_fake,
            status="released",
            reports=None,
            counts=counts,
            reject_reason=None,
        )

    def record_epoch(
        self, report, estimates: np.ndarray, checkpoint: IngestCheckpoint
    ) -> None:
        self._require_run()
        self._epoch_reports.append(report)
        self._estimates[report.epoch] = estimates
        self._checkpoint = checkpoint

    def epoch_log(self) -> List[tuple]:
        return [
            (report.epoch, self._estimates[report.epoch])
            for report in self._epoch_reports
        ]

    def estimate_snapshot(self, epoch: int) -> np.ndarray:
        """The estimate vector committed when ``epoch`` closed."""
        estimates = self._estimates.get(int(epoch))
        if estimates is None:
            raise StateStoreError(f"no epoch {epoch} in this store")
        return estimates

    def load_run(self) -> RunSnapshot:
        self._require_run()
        from .records import charges_from_rows

        checkpoint = self._checkpoint
        return RunSnapshot(
            config=self._config,
            release_entropy=self._release_entropy,
            rng_state=checkpoint.rng_state,
            buffer_epoch=checkpoint.buffer_epoch,
            next_sequence=checkpoint.next_sequence,
            remainder=checkpoint.merged_remainder(),
            n_submits=checkpoint.n_submits,
            charges=charges_from_rows(self._charges),
            flushes=tuple(
                self._flushes[sequence]
                for sequence in sorted(self._flushes)
            ),
            epoch_reports=tuple(self._epoch_reports),
        )
