"""Figure 2 — the EOS walkthrough (r = 3 shufflers, n = 3 values a, b, c).

Reproduces the figure's scenario end to end: three secrets secret-shared
across three shufflers with one encrypted share, one full EOS execution,
and the server-side reconstruction — asserting the defining properties the
figure illustrates (multiset preserved, ciphertext share migrates, every
single shuffler remains blind to the permutation).
"""

from __future__ import annotations

import numpy as np

from repro.crypto import paillier
from repro.crypto.secret_sharing import share_vector
from repro.shuffle import encrypted_oblivious_shuffle, server_reconstruct

from bench_common import bench_rng, emit, run_once

M = 1 << 16


def _experiment() -> str:
    rng = bench_rng()
    pub, priv = paillier.generate_keypair(key_bits=512, rng=2020)
    a, b, c = 0x0A, 0x0B, 0x0C
    values = np.array([a, b, c], dtype=np.int64)
    shares = share_vector(values, 3, M, rng)
    encrypted = [pub.encrypt(int(s), 1 + i) for i, s in enumerate(shares[2])]
    plain = [shares[0], shares[1], np.zeros(3, dtype=np.int64)]

    state = encrypted_oblivious_shuffle(
        plain, encrypted, holder=2, modulus=M, ahe=pub, rng=rng, crypto_rng=3
    )
    reconstructed = np.asarray(server_reconstruct(state, M, priv.decrypt))

    lines = [
        "EOS walkthrough (r=3, values a=0x0A, b=0x0B, c=0x0C):",
        f"  input order : {[hex(v) for v in values.tolist()]}",
        f"  output order: {[hex(int(v)) for v in reconstructed.tolist()]}",
        f"  rounds      : {len(state.transcript.rounds)} (C(3,2) hide-and-seek rounds)",
        f"  final holder: shuffler {state.holder}",
    ]
    multiset_ok = sorted(reconstructed.tolist()) == sorted(values.tolist())
    blind = all(
        not state.transcript.known_to([j]) for j in range(3)
    )
    lines.append(f"  [{'ok' if multiset_ok else 'MISMATCH'}] multiset preserved")
    lines.append(
        f"  [{'ok' if blind else 'MISMATCH'}] no single shuffler knows the permutation"
    )
    return "\n".join(lines)


def bench_figure2_walkthrough(benchmark):
    """Run the Figure 2 scenario once under timing."""
    table = run_once(benchmark, _experiment)
    emit("fig2_eos_walkthrough", table)
    assert "MISMATCH" not in table
