"""Streaming-service throughput: reports/sec and flush latency.

Unlike the table/figure benches this one measures the new subsystem, not
the paper; its machine-readable numbers ride the shared benchmark JSON
envelope's ``extra`` field (consumed by the roadmap's scaling work to
track regressions):

* the **materialized** path — the full ``TelemetryPipeline`` with the
  ``plain`` backend (vectorized privatize + fake injection + permutation
  + ``support_counts``), the honest-shuffler upper bound on service
  throughput;
* the **statistical** path — ``IncrementalAggregator.fold_histogram``,
  the O(d) closed-form sampling route used for paper-scale simulation.

Scale knobs are shared with the other benches (``REPRO_BENCH_SCALE``
etc.; see bench_common).
"""

from __future__ import annotations

import time

import numpy as np

from repro.data import zipf_histogram
from repro.data.synthetic import values_from_histogram
from repro.service import IncrementalAggregator, StreamConfig, TelemetryPipeline

from bench_common import BenchResult, bench_rng, bench_scale, emit, run_once

D = 64
EPOCHS = 5
BASE_EPOCH_SIZE = 200_000  # at scale 1.0
DELTA = 1e-9
EPS_TARGETS = (1.0, 3.0, 6.0)


def _experiment() -> BenchResult:
    rng = bench_rng()
    epoch_size = max(1000, int(BASE_EPOCH_SIZE * bench_scale()))
    flush_size = max(500, epoch_size // 2)
    config = StreamConfig.from_targets(
        d=D,
        flush_size=flush_size,
        eps_targets=EPS_TARGETS,
        delta=DELTA,
        admitted_flushes=2 * EPOCHS * ((epoch_size + flush_size - 1) // flush_size),
    )
    pipeline = TelemetryPipeline(config, rng)

    ingest_started = time.perf_counter()
    for __ in range(EPOCHS):
        histogram = zipf_histogram(epoch_size, D, 1.3, rng)
        pipeline.submit(values_from_histogram(histogram, rng))
        pipeline.end_epoch()
    ingest_elapsed = time.perf_counter() - ingest_started
    result = pipeline.result()
    latencies = [e.flush_latency_s / max(1, e.n_flushes) for e in result.epochs]
    total_latency = sum(e.flush_latency_s for e in result.epochs)

    # Statistical path: the same flush schedule (one fold per flush, each
    # with the plan's n_r fakes) via closed-form sampling.
    full, remainder = divmod(epoch_size, flush_size)
    aggregator = IncrementalAggregator(pipeline.fo)
    started = time.perf_counter()
    statistical_folds = 0
    for __ in range(EPOCHS):
        for size in [flush_size] * full + ([remainder] if remainder else []):
            histogram = zipf_histogram(size, D, 1.3, rng)
            aggregator.fold_histogram(histogram, config.plan.n_r, rng)
            statistical_folds += 1
    statistical_elapsed = time.perf_counter() - started

    extra = {
        "backend": config.backend,
        "mechanism": config.plan.mechanism,
        "d": D,
        "epochs": EPOCHS,
        "epoch_size": epoch_size,
        "flush_size": flush_size,
        "fakes_per_flush": config.plan.n_r,
        "released_reports": result.n_genuine,
        # End-to-end: privatize + encode + buffer + release + fold.
        "ingest_reports_per_sec": (
            result.n_genuine / ingest_elapsed if ingest_elapsed > 0 else None
        ),
        # Release path only (backend shuffle + decode + fold).
        "release_reports_per_sec": (
            result.n_genuine / total_latency if total_latency > 0 else None
        ),
        "mean_flush_latency_s": float(np.mean(latencies)),
        "max_flush_latency_s": float(np.max(latencies)),
        "statistical_path": {
            "folds": statistical_folds,
            "reports": EPOCHS * epoch_size,
            "reports_per_sec": (
                EPOCHS * epoch_size / statistical_elapsed
                if statistical_elapsed > 0
                else None
            ),
        },
    }
    def rate(value) -> str:
        return f"{value:,.0f} reports/s" if value else "n/a"

    table = (
        f"{config.plan.mechanism.upper()} via {config.backend} backend: "
        f"{extra['released_reports']} reports released over {EPOCHS} epochs\n"
        f"ingest  : {rate(extra['ingest_reports_per_sec'])} "
        f"(privatize + encode + buffer + release + fold)\n"
        f"release : {rate(extra['release_reports_per_sec'])} "
        f"(backend shuffle + decode + fold only)\n"
        f"flush latency: mean {extra['mean_flush_latency_s'] * 1e3:.1f} ms, "
        f"max {extra['max_flush_latency_s'] * 1e3:.1f} ms\n"
        f"statistical path: "
        f"{rate(extra['statistical_path']['reports_per_sec'])} "
        f"over {extra['statistical_path']['folds']} closed-form folds"
    )
    return BenchResult(table=table, extra=extra)


def bench_service_throughput(benchmark):
    """Measure the streaming service's sustained ingest rate."""
    result = run_once(benchmark, _experiment)
    emit("service_throughput", result)
    assert result.extra["released_reports"] > 0
    assert result.extra["ingest_reports_per_sec"] > 0
