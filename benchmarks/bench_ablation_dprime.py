"""Ablation — sensitivity of SOLH to the hash-domain choice ``d'``.

Sweeps ``d'`` around the Eq. (5) optimum on a Kosarak-like workload,
reporting both the analytical variance (Prop. 6) and the empirical MSE.
The two must agree, and the empirical minimum must land at (or next to)
the closed-form optimum — this is the design-choice validation DESIGN.md
calls out for the paper's central tuning rule.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import mse
from repro.core import solh_optimal_d_prime, solh_variance_shuffled
from repro.data import kosarak_like
from repro.frequency_oracles import SOLH

from bench_common import bench_repeats, bench_rng, bench_scale, emit, run_once

DELTA = 1e-9
EPS_C = 0.6


def _experiment() -> str:
    rng = bench_rng()
    data = kosarak_like(rng, scale=bench_scale())
    truth = data.frequencies
    optimum = solh_optimal_d_prime(EPS_C, data.n, DELTA)
    sweep = sorted(
        {
            max(2, optimum // 8),
            max(2, optimum // 3),
            max(2, optimum // 2),
            optimum,
            optimum * 2,
            optimum * 3,
        }
    )
    lines = [
        f"Kosarak-like n={data.n}, d={data.d}, eps_c={EPS_C}, "
        f"Eq.(5) optimum d'={optimum}",
        f"{'d-prime':>8}  {'analytic var':>14}  {'empirical MSE':>14}",
    ]
    empirical: dict[int, float] = {}
    for d_prime in sweep:
        analytic = solh_variance_shuffled(EPS_C, data.n, DELTA, d_prime=d_prime)
        oracle, __ = SOLH.for_central_target(
            data.d, EPS_C, data.n, DELTA, d_prime=d_prime
        )
        measured = float(
            np.mean(
                [
                    mse(truth, oracle.estimate_from_histogram(data.histogram, rng))
                    for __ in range(bench_repeats())
                ]
            )
        )
        empirical[d_prime] = measured
        lines.append(f"{d_prime:>8}  {analytic:>14.3e}  {measured:>14.3e}")

    best = min(empirical, key=empirical.get)
    ok_optimal = empirical[optimum] <= empirical[best] * 1.25
    analytic_at_opt = solh_variance_shuffled(EPS_C, data.n, DELTA, d_prime=optimum)
    ok_match = 0.3 < empirical[optimum] / analytic_at_opt < 3.0
    lines.append(
        f"  [{'ok' if ok_optimal else 'MISMATCH'}] Eq.(5) optimum within 25% "
        f"of the best swept d' (best: {best})"
    )
    lines.append(
        f"  [{'ok' if ok_match else 'MISMATCH'}] empirical MSE matches Prop. 6 "
        "within 3x"
    )
    return "\n".join(lines)


def bench_ablation_dprime(benchmark):
    """Validate the Eq. (5) tuning rule empirically."""
    table = run_once(benchmark, _experiment)
    emit("ablation_dprime", table)
    assert "MISMATCH" not in table
