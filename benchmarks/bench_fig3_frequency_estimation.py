"""Figure 3 — MSE vs eps_c on the IPUMS dataset, all competitors.

Runs through the :mod:`repro.api` facade (one ``ShuffleSession.sweep``
call) and emits both the paper-style table and the structured
``SweepResultSet`` in the shared benchmark JSON envelope.

Expected shape (paper):
* SH has no amplification below eps_c ~ sqrt(14 ln(2/delta) d / (n-1)) and
  is then worse than the Base random guess;
* SOLH ~ AUE ~ RAP, with RAP_R best among shuffle methods (2x budget);
* LDP methods (OLH, Had) ~3 orders of magnitude worse than shuffle
  methods; Lap ~2 orders better.
"""

from __future__ import annotations

from repro.analysis import FIGURE3_METHODS
from repro.api import DeploymentConfig, PrivacyBudget, ShuffleSession

from bench_common import (
    BenchResult,
    bench_repeats,
    bench_rng,
    bench_scale,
    bench_workers,
    emit,
    run_once,
    standalone_main,
)

DELTA = 1e-9
EPS_GRID = [0.1, 0.2, 0.4, 0.6, 0.8, 1.0]


def _experiment() -> BenchResult:
    from repro.data import ipums_like

    rng = bench_rng()
    data = ipums_like(rng, scale=bench_scale())
    session = ShuffleSession(
        DeploymentConfig(mechanism="SOLH", d=data.d),
        PrivacyBudget(eps=min(EPS_GRID), delta=DELTA),
    )
    sweep = session.sweep(
        data.histogram,
        EPS_GRID,
        methods=FIGURE3_METHODS,
        repeats=bench_repeats(),
        workers=bench_workers(),
        rng=rng,
    )
    caption = (
        f"IPUMS-like dataset: n={data.n}, d={data.d} "
        f"(paper: n=602325, d=915; scale={bench_scale()}), delta={DELTA}, "
        f"{bench_repeats()} repeats. Values are MSE."
    )
    table = sweep.table(caption)

    # Shape assertions documented in EXPERIMENTS.md.
    checks = []
    solh_small = sweep["SOLH"].means[1]
    sh_small = sweep["SH"].means[1]
    base = sweep["Base"].means[1]
    olh = sweep["OLH"].means[-1]
    solh_large = sweep["SOLH"].means[-1]
    lap = sweep["Lap"].means[-1]
    checks.append(("SH worse than Base at eps_c=0.2", sh_small > base))
    checks.append(("SOLH beats SH by >100x at eps_c=0.2", solh_small * 100 < sh_small))
    checks.append(("SOLH beats OLH by >50x at eps_c=1.0", solh_large * 50 < olh))
    checks.append(("Lap beats SOLH at eps_c=1.0", lap < solh_large))
    check_lines = [f"  [{'ok' if ok else 'MISMATCH'}] {label}" for label, ok in checks]
    return BenchResult(
        table=table + "\nShape checks:\n" + "\n".join(check_lines),
        sweep=sweep,
        extra={"shape_checks": {label: bool(ok) for label, ok in checks}},
    )


def bench_figure3(benchmark):
    """Regenerate Figure 3's series (printed as a table)."""
    result = run_once(benchmark, _experiment)
    emit("fig3_frequency_estimation", result)
    assert "MISMATCH" not in result.table


if __name__ == "__main__":
    raise SystemExit(
        standalone_main("fig3_frequency_estimation", _experiment)
    )
