"""Ablation — the fake-report tradeoff in PEOS (Section VI-B/C).

Sweeps the number of fake reports ``n_r`` at a fixed central target,
reporting the collusion guarantee ``eps_s`` (Corollary 8), the local
budget the users may spend, and the predicted estimation variance.

The tradeoff this quantifies: at fixed ``eps_c``, more fakes buy a
*stronger* collusion guarantee AND better utility (users may spend more
local budget since the fakes carry part of the blanket) — but the local
guarantee ``eps_l`` against ``Adv_a`` (majority-corrupted shufflers)
*degrades*, eventually to nothing (``eps_l = inf`` once the fakes alone
meet the target), and communication grows with ``n + n_r``.  A deployment
caps ``eps_l`` at its ``eps_3`` target, which is exactly what the Section
VI-D planner does.
"""

from __future__ import annotations

import math

from repro.core import (
    invert_peos_solh,
    peos_epsilon_collusion_solh,
    peos_optimal_d_prime,
    peos_variance_solh,
)
from repro.data import ipums_like

from bench_common import bench_rng, bench_scale, emit, run_once

DELTA = 1e-9
EPS_C = 0.5


def _experiment() -> str:
    rng = bench_rng()
    data = ipums_like(rng, scale=bench_scale())
    n = data.n
    lines = [
        f"IPUMS-like n={n}, eps_c={EPS_C} fixed; sweep over fake reports n_r",
        f"{'n_r':>10}  {'d-prime':>8}  {'eps_s (Adv_u)':>14}  {'eps_l':>8}  "
        f"{'predicted var':>14}",
    ]
    rows = []
    for ratio in (0.0, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0):
        n_r = int(ratio * n)
        d_prime = peos_optimal_d_prime(EPS_C, n, n_r, DELTA)
        eps_s = peos_epsilon_collusion_solh(d_prime, n_r, DELTA)
        eps_l = invert_peos_solh(EPS_C, d_prime, n, n_r, DELTA)
        variance = peos_variance_solh(EPS_C, n, n_r, DELTA, d_prime=d_prime)
        rows.append((n_r, eps_s, eps_l, variance))
        eps_s_str = f"{eps_s:14.3f}" if math.isfinite(eps_s) else f"{'inf':>14}"
        eps_l_str = f"{eps_l:8.3f}" if (eps_l and math.isfinite(eps_l)) else f"{'inf':>8}"
        lines.append(
            f"{n_r:>10}  {d_prime:>8}  {eps_s_str}  {eps_l_str}  {variance:>14.3e}"
        )

    eps_s_values = [r[1] for r in rows]
    eps_l_values = [r[2] if r[2] is not None else math.inf for r in rows]
    variances = [r[3] for r in rows]
    ok_eps_s = all(a >= b for a, b in zip(eps_s_values, eps_s_values[1:]))
    ok_var = all(a >= b * 0.999 for a, b in zip(variances, variances[1:]))
    ok_eps_l = all(a <= b * 1.001 for a, b in zip(eps_l_values, eps_l_values[1:]))
    lines.append(
        f"  [{'ok' if ok_eps_s else 'MISMATCH'}] eps_s (collusion) improves "
        "monotonically with n_r"
    )
    lines.append(
        f"  [{'ok' if ok_var else 'MISMATCH'}] variance improves with n_r "
        "(fakes carry part of the blanket)"
    )
    lines.append(
        f"  [{'ok' if ok_eps_l else 'MISMATCH'}] the price: local exposure "
        "eps_l grows with n_r, reaching inf when fakes alone meet eps_c"
    )
    return "\n".join(lines)


def bench_ablation_fake_reports(benchmark):
    """Characterize the n_r privacy/utility tradeoff."""
    table = run_once(benchmark, _experiment)
    emit("ablation_fake_reports", table)
    assert "MISMATCH" not in table
