"""Sharded streaming fold throughput: serial vs process-pool folding.

Runs the same pre-generated workload through the single-shard serial
pipeline and through :class:`repro.service.ShardedPipeline` with
``REPRO_BENCH_SHARDS`` shards folded on a spawn-safe process pool, then
reports the fold-throughput ratio.  The workload is the *materialized*
path pinned to SOLH: the streaming oracle uses the 32-bit-seed xxHash32
family (the ordinal-group requirement).  Its release side (fake
injection + permutation + decode + the O(n*d) support-count kernel) is
vectorized numpy since the kernel engine landed — process folding now
buys overlap of whole flush releases across cores rather than an escape
from a scalar-Python GIL, so the measured speedup is honest kernel
parallelism (see ``bench_hash_throughput.py`` for the single-core
kernel numbers).

Two correctness gates ride along and land in ``extra``:

* ``estimates_identical`` — the sharded/process estimates match the
  serial single-shard run byte for byte (the determinism contract);
* fold throughput for each configuration, with the pool spawned and
  warmed *before* timing so the ratio measures folding, not process
  start-up.

Scale knobs are shared with the other benches (``REPRO_BENCH_SCALE``,
``REPRO_BENCH_SHARDS``; see bench_common).  Standalone:
``python benchmarks/bench_sharded_throughput.py --scale 0.02 --shards 2``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.data import zipf_histogram
from repro.data.synthetic import values_from_histogram
from repro.service import ShardedPipeline, StreamConfig

from bench_common import (
    BenchResult,
    bench_scale,
    bench_seed,
    bench_shards,
    emit,
    run_once,
    standalone_main,
)

D = 64
EPOCHS = 4
BASE_EPOCH_SIZE = 200_000  # at scale 1.0; the SOLH fold path costs
                           # O(n * d) vectorized kernel hash evals
DELTA = 1e-9
EPS_TARGETS = (1.0, 3.0, 6.0)
ZIPF_EXPONENT = 1.3


def _run_config(
    config: StreamConfig, epoch_values, n_shards: int, fold_backend: str
) -> tuple:
    """One timed run; returns (StreamResult, wall seconds, worker count)."""
    with ShardedPipeline(
        config,
        np.random.default_rng(bench_seed()),
        n_shards=n_shards,
        fold_backend=fold_backend,
    ) as pipeline:
        pipeline.warmup()  # spawn cost must not pollute the fold timing
        started = time.perf_counter()
        for values in epoch_values:
            pipeline.submit(values)
            pipeline.end_epoch()
        result = pipeline.result()  # drains outstanding folds
        elapsed = time.perf_counter() - started
        workers = pipeline.workers if fold_backend == "process" else 1
    return result, elapsed, workers


def _experiment() -> BenchResult:
    shards = bench_shards()
    epoch_size = max(2_000, int(BASE_EPOCH_SIZE * bench_scale()))
    flush_size = max(500, epoch_size // 4)
    config = StreamConfig.from_targets(
        d=D,
        flush_size=flush_size,
        eps_targets=EPS_TARGETS,
        delta=DELTA,
        admitted_flushes=2 * EPOCHS * ((epoch_size + flush_size - 1) // flush_size),
        mechanism="solh",
    )
    # One pre-generated workload, fed identically to every configuration,
    # so the byte-identity cross-check compares like with like.
    data_rng = np.random.default_rng(bench_seed())
    epoch_values = [
        values_from_histogram(
            zipf_histogram(epoch_size, D, ZIPF_EXPONENT, data_rng), data_rng
        )
        for __ in range(EPOCHS)
    ]

    serial, serial_s, __ = _run_config(config, epoch_values, 1, "serial")
    sharded, sharded_s, workers = _run_config(
        config, epoch_values, shards, "process" if shards > 1 else "serial"
    )

    identical = serial.estimates.tobytes() == sharded.estimates.tobytes()
    serial_rate = serial.n_genuine / serial_s if serial_s > 0 else None
    sharded_rate = sharded.n_genuine / sharded_s if sharded_s > 0 else None
    speedup = serial_s / sharded_s if sharded_s > 0 else None

    extra = {
        "mechanism": config.plan.mechanism,
        "d": D,
        "epochs": EPOCHS,
        "epoch_size": epoch_size,
        "flush_size": flush_size,
        "fakes_per_flush": config.plan.n_r,
        "shards": shards,
        "fold_workers": workers,
        "cpu_count": os.cpu_count(),
        "released_reports": serial.n_genuine,
        "estimates_identical": bool(identical),
        "serial": {
            "wall_seconds": serial_s,
            "fold_reports_per_sec": serial_rate,
        },
        "sharded": {
            "wall_seconds": sharded_s,
            "fold_reports_per_sec": sharded_rate,
        },
        "speedup": speedup,
    }

    def rate(value) -> str:
        return f"{value:,.0f} reports/s" if value else "n/a"

    table = (
        f"SOLH materialized fold path (vectorized xxhash32 kernel), d={D}, "
        f"{serial.n_genuine} reports released over {EPOCHS} epochs\n"
        f"serial (1 shard)          : {rate(serial_rate)} "
        f"({serial_s:.2f}s wall)\n"
        f"sharded ({shards} shards, {workers} procs): {rate(sharded_rate)} "
        f"({sharded_s:.2f}s wall)\n"
        f"speedup : {speedup:.2f}x"
        + (
            f" (host has {os.cpu_count()} CPU(s); process folding "
            f"cannot go faster than serial on a single core)"
            if (os.cpu_count() or 1) < 2
            else ""
        )
        + "\n"
        f"estimates byte-identical across shard counts: "
        f"{'yes' if identical else 'NO — DETERMINISM VIOLATION'}"
    )
    return BenchResult(table=table, extra=extra)


def bench_sharded_throughput(benchmark):
    """Measure process-sharded fold throughput against the serial path."""
    result = run_once(benchmark, _experiment)
    emit("sharded_throughput", result)
    assert result.extra["estimates_identical"], (
        "sharded estimates differ from the serial single-shard run"
    )
    assert result.extra["released_reports"] > 0


if __name__ == "__main__":
    raise SystemExit(
        standalone_main("sharded_throughput", _experiment)
    )
