"""Sharded streaming fold throughput: serial vs pickle vs shm transports.

Runs the same pre-generated workload through three configurations of
:class:`repro.service.ShardedPipeline` — the single-shard serial
pipeline, process folding with the legacy **pickle** transport, and
process folding with the zero-copy **shm** transport (pooled
``multiprocessing.shared_memory`` segments the workers map read-only) —
then reports the fold-throughput ratios.  The workload is the
*materialized* path pinned to SOLH: the streaming oracle uses the
32-bit-seed xxHash32 family (the ordinal-group requirement), and its
release side (fake injection + permutation + decode + the O(n*d)
support-count kernel) is vectorized numpy, so the transport is the
remaining memory-movement cost the shm path eliminates.

A second experiment rides along: the cross-flush **seed-row cache**
(:class:`repro.hashing.kernels.SeedRowCache`).  A retained report set is
folded repeatedly — the documented O(u*d) re-aggregation workload where
every seed after the first pass is a repeat — once with the cache off
and once with it on, asserting equal counts and recording the speedup
and hit rate.

Correctness gates in ``extra``:

* ``estimates_identical`` — serial, pickle-transport, and shm-transport
  estimates all match byte for byte (the determinism contract);
* ``seed_cache_identical`` — cached folds reproduce uncached counts
  exactly;
* transport telemetry — ``bytes_moved``, ``shm_peak_bytes``,
  ``seed_cache_hit_rate``.

Pools are spawned and warmed *before* timing, so the ratios measure
folding, not process start-up.  Scale knobs are shared with the other
benches (``REPRO_BENCH_SCALE``, ``REPRO_BENCH_SHARDS``; see
bench_common).  Standalone:
``python benchmarks/bench_sharded_throughput.py --scale 0.02 --shards 2``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.data import zipf_histogram
from repro.data.synthetic import values_from_histogram
from repro.service import ShardedPipeline, StreamConfig, oracle_from_plan

from bench_common import (
    BenchResult,
    bench_scale,
    bench_seed,
    bench_shards,
    emit,
    run_once,
    standalone_main,
)

D = 64
EPOCHS = 4
BASE_EPOCH_SIZE = 200_000  # at scale 1.0; the SOLH fold path costs
                           # O(n * d) vectorized kernel hash evals
DELTA = 1e-9
EPS_TARGETS = (1.0, 3.0, 6.0)
ZIPF_EXPONENT = 1.3
#: repeated folds of the retained report set in the seed-cache experiment
#: — enough repeats that the first (all-miss, cache-filling) fold's cost
#: amortizes the way it does in real candidate re-scoring loops
CACHE_FOLDS = 8
#: seed-row-cache budget for the cache experiment — sized to hold the
#: full working set (CACHE_REPORTS_BASE rows of 4*CACHE_D bytes); an LRU
#: smaller than the repeat-fold working set would thrash to a ~0% hit rate
CACHE_BYTES = 128 << 20
#: the cache experiment's candidate domain — wide on purpose: cached rows
#: replace O(d) hash evaluations, so the win scales with d (succinct-
#: histogram-style re-aggregation), while the transport experiment above
#: stays on the streaming config's narrow domain
CACHE_D = 1024
CACHE_REPORTS_BASE = 20_000  # at scale 1.0


def fmt_speedup(value) -> str:
    """Guarded ratio formatting: a degenerate 0-second wall yields n/a."""
    return f"{value:.2f}x" if value else "n/a"


def _run_config(
    config: StreamConfig,
    epoch_values,
    n_shards: int,
    fold_backend: str,
    transport: str = "shm",
) -> tuple:
    """One timed run; returns (result, wall seconds, workers, transport stats)."""
    with ShardedPipeline(
        config,
        np.random.default_rng(bench_seed()),
        n_shards=n_shards,
        fold_backend=fold_backend,
        transport=transport,
    ) as pipeline:
        pipeline.warmup()  # spawn cost must not pollute the fold timing
        started = time.perf_counter()
        for values in epoch_values:
            pipeline.submit(values)
            pipeline.end_epoch()
        result = pipeline.result()  # drains outstanding folds
        elapsed = time.perf_counter() - started
        workers = pipeline.workers if fold_backend == "process" else 1
        stats = pipeline.transport_stats()
    return result, elapsed, workers, stats


def _seed_cache_experiment() -> dict:
    """Fold one retained report set ``CACHE_FOLDS`` times, cache off vs on.

    The repeat-seed workload the kernel docs advertise: after the first
    pass every distinct seed is already cached, so the remaining folds
    replace their O(d) hash evaluations with row copies.  Counts must be
    bit-identical either way.
    """
    from repro.frequency_oracles import OLH
    from repro.hashing import XXHash32Family

    n_reports = max(1_000, int(CACHE_REPORTS_BASE * bench_scale()))
    fo_off = OLH(d=CACHE_D, eps=3.0, family=XXHash32Family())
    fo_on = OLH(d=CACHE_D, eps=3.0, family=XXHash32Family())
    fo_on.configure_kernel(seed_cache_bytes=CACHE_BYTES)
    data_rng = np.random.default_rng(bench_seed())
    values = data_rng.integers(0, CACHE_D, n_reports)
    reports = fo_off.privatize(values, np.random.default_rng(bench_seed()))

    def fold_loop(fo):
        started = time.perf_counter()
        totals = None
        for __ in range(CACHE_FOLDS):
            counts = fo.support_counts(reports)
            totals = counts if totals is None else totals + counts
        return totals, time.perf_counter() - started

    # Warm both paths before timing: numpy/code paths for the plain
    # loop, and the cache itself for the cached loop — the cache is a
    # *cross-flush* structure, so its steady state (rows populated by
    # earlier flushes) is the state being measured, not the first-ever
    # fill.  The fill cost shows up in the recorded hit rate instead.
    fold_loop(fo_off)
    fold_loop(fo_on)
    off_counts, off_s = fold_loop(fo_off)
    on_counts, on_s = fold_loop(fo_on)
    cache = fo_on.seed_cache
    return {
        "folds": CACHE_FOLDS,
        "reports": n_reports,
        "identical": bool(
            off_counts.tobytes() == on_counts.tobytes()
        ),
        "d": CACHE_D,
        "off_wall_seconds": off_s,
        "on_wall_seconds": on_s,
        "speedup": off_s / on_s if on_s > 0 else None,
        "hit_rate": cache.hit_rate,
        "cached_rows": len(cache),
        "cached_bytes": cache.nbytes,
    }


def _experiment() -> BenchResult:
    shards = bench_shards()
    epoch_size = max(2_000, int(BASE_EPOCH_SIZE * bench_scale()))
    flush_size = max(500, epoch_size // 4)
    config = StreamConfig.from_targets(
        d=D,
        flush_size=flush_size,
        eps_targets=EPS_TARGETS,
        delta=DELTA,
        admitted_flushes=2 * EPOCHS * ((epoch_size + flush_size - 1) // flush_size),
        mechanism="solh",
    )
    # One pre-generated workload, fed identically to every configuration,
    # so the byte-identity cross-check compares like with like.
    data_rng = np.random.default_rng(bench_seed())
    epoch_values = [
        values_from_histogram(
            zipf_histogram(epoch_size, D, ZIPF_EXPONENT, data_rng), data_rng
        )
        for __ in range(EPOCHS)
    ]

    serial, serial_s, __, __ = _run_config(config, epoch_values, 1, "serial")
    fold_backend = "process" if shards > 1 else "serial"
    pickled, pickle_s, workers, pickle_stats = _run_config(
        config, epoch_values, shards, fold_backend, transport="pickle"
    )
    shm, shm_s, __, shm_stats = _run_config(
        config, epoch_values, shards, fold_backend, transport="shm"
    )

    identical = (
        serial.estimates.tobytes()
        == pickled.estimates.tobytes()
        == shm.estimates.tobytes()
    )
    serial_rate = serial.n_genuine / serial_s if serial_s > 0 else None
    pickle_rate = pickled.n_genuine / pickle_s if pickle_s > 0 else None
    shm_rate = shm.n_genuine / shm_s if shm_s > 0 else None
    speedup = serial_s / shm_s if shm_s > 0 else None
    shm_vs_pickle = pickle_s / shm_s if shm_s > 0 else None

    cache = _seed_cache_experiment()

    extra = {
        "mechanism": config.plan.mechanism,
        "d": D,
        "epochs": EPOCHS,
        "epoch_size": epoch_size,
        "flush_size": flush_size,
        "fakes_per_flush": config.plan.n_r,
        "shards": shards,
        "fold_workers": workers,
        "cpu_count": os.cpu_count(),
        "released_reports": serial.n_genuine,
        "estimates_identical": bool(identical),
        "serial": {
            "wall_seconds": serial_s,
            "fold_reports_per_sec": serial_rate,
        },
        "pickle": {
            "wall_seconds": pickle_s,
            "fold_reports_per_sec": pickle_rate,
            "bytes_moved": pickle_stats["bytes_moved"],
        },
        "shm": {
            "wall_seconds": shm_s,
            "fold_reports_per_sec": shm_rate,
            "bytes_moved": shm_stats["bytes_moved"],
        },
        # kept under the historical name (serial wall / sharded-shm wall)
        # for the CI smoke's cross-check
        "speedup": speedup,
        "shm_vs_pickle_speedup": shm_vs_pickle,
        "bytes_moved": shm_stats["bytes_moved"],
        "shm_peak_bytes": shm_stats["shm_peak_bytes"],
        "seed_cache_identical": cache["identical"],
        "seed_cache_speedup": cache["speedup"],
        "seed_cache_hit_rate": cache["hit_rate"],
        "seed_cache": cache,
    }

    def rate(value) -> str:
        return f"{value:,.0f} reports/s" if value else "n/a"

    table = (
        f"SOLH materialized fold path (vectorized xxhash32 kernel), d={D}, "
        f"{serial.n_genuine} reports released over {EPOCHS} epochs\n"
        f"serial (1 shard)             : {rate(serial_rate)} "
        f"({serial_s:.2f}s wall)\n"
        f"pickle ({shards} shards, {workers} procs)   : {rate(pickle_rate)} "
        f"({pickle_s:.2f}s wall, "
        f"{pickle_stats['bytes_moved'] / 1024:,.0f} KiB pickled)\n"
        f"shm    ({shards} shards, {workers} procs)   : {rate(shm_rate)} "
        f"({shm_s:.2f}s wall, "
        f"{shm_stats['bytes_moved'] / 1024:,.0f} KiB via "
        f"{shm_stats['shm_peak_bytes'] / 1024:,.0f} KiB of segments)\n"
        f"speedup vs serial : {fmt_speedup(speedup)}\n"
        f"shm vs pickle     : {fmt_speedup(shm_vs_pickle)}"
        + (
            f" (host has {os.cpu_count()} CPU(s); process folding "
            f"cannot go faster than serial on a single core)"
            if (os.cpu_count() or 1) < 2
            else ""
        )
        + "\n"
        f"seed cache ({cache['folds']} folds of {cache['reports']} retained "
        f"reports): {fmt_speedup(cache['speedup'])} vs cache-off, "
        f"hit rate {cache['hit_rate']:.2f}, counts identical: "
        f"{'yes' if cache['identical'] else 'NO — CACHE CORRUPTION'}\n"
        f"estimates byte-identical across serial/pickle/shm: "
        f"{'yes' if identical else 'NO — DETERMINISM VIOLATION'}"
    )
    return BenchResult(table=table, extra=extra)


def bench_sharded_throughput(benchmark):
    """Measure transport + cache fold throughput against the serial path."""
    result = run_once(benchmark, _experiment)
    emit("sharded_throughput", result)
    assert result.extra["estimates_identical"], (
        "sharded estimates differ across the serial/pickle/shm runs"
    )
    assert result.extra["seed_cache_identical"], (
        "seed-row cache changed support counts"
    )
    assert result.extra["released_reports"] > 0


if __name__ == "__main__":
    raise SystemExit(
        standalone_main("sharded_throughput", _experiment)
    )
