"""Table I — comparison of the three privacy-amplification results.

For a grid of local budgets the three bounds (EFMRTT'19 [32], CSUZZ'19
[21], BBGN'19 [9]) are evaluated at the paper's IPUMS setting
(n = 602,325, delta = 1e-9); the BBGN bound should be the smallest
(strongest) wherever all are applicable, which is the claim of Table I.
"""

from __future__ import annotations

from repro.core import (
    csuzz_amplified_epsilon,
    efmrtt_amplified_epsilon,
    grr_amplification_threshold,
    grr_amplified_epsilon,
)

from bench_common import emit, run_once

N, DELTA = 602_325, 1e-9
D_BINARY = 2


def _build_table() -> str:
    lines = [
        f"Amplified eps_c for n={N}, delta={DELTA}, binary domain (d=2)",
        f"{'eps_l':>6}  {'EFMRTT19':>12}  {'CSUZZ19':>12}  {'BBGN19':>12}  strongest",
    ]
    for eps_l in (0.1, 0.25, 0.4, 0.49, 1.0, 2.0, 4.0):
        try:
            efmrtt = f"{efmrtt_amplified_epsilon(eps_l, N, DELTA):12.4f}"
        except ValueError:
            efmrtt = f"{'n/a':>12}"
        csuzz = csuzz_amplified_epsilon(eps_l, N, DELTA)
        bbgn = grr_amplified_epsilon(eps_l, N, D_BINARY, DELTA)
        strongest = "BBGN19" if bbgn <= csuzz else "CSUZZ19"
        lines.append(
            f"{eps_l:6.2f}  {efmrtt}  {csuzz:12.4f}  {bbgn:12.4f}  {strongest}"
        )
    lines.append("")
    lines.append("Applicability thresholds (condition column of Table I):")
    for d in (2, 100, 915, 42_178):
        lines.append(
            f"  d={d:>6}: shuffled GRR amplifies only for eps_c >= "
            f"{grr_amplification_threshold(N, d, DELTA):.4f}"
        )
    return "\n".join(lines)


def bench_table1(benchmark):
    """Regenerate Table I (bound comparison + applicability conditions)."""
    table = run_once(benchmark, _build_table)
    emit("table1_amplification", table)
    assert "BBGN19" in table
