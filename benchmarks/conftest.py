"""Collection rules for the benchmark harness.

`pyproject.toml` widens pytest's patterns to ``bench_*.py`` / ``bench_*``
so `pytest benchmarks` runs the harness; this conftest keeps that widening
from collecting the shared helpers (``bench_common``) or helper functions
imported into a bench module's namespace.
"""

collect_ignore = ["bench_common.py"]


def pytest_collection_modifyitems(items):
    items[:] = [
        item
        for item in items
        if getattr(item.function, "__module__", None) == item.module.__name__
    ]
