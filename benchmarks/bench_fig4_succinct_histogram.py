"""Figure 4 — top-32 precision on the AOL succinct-histogram case study.

TreeHist over 48-bit strings, 6 rounds of 8 bits, with every Section VII-A
frequency estimator plugged in.  Expected shape: shuffle methods (SOLH,
RAP, RAP_R, AUE) clearly beat the LDP TreeHist (OLH, Had); SH is the worst
(no amplification at per-round budgets); Lap is the upper bound.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import precision_at_k, treehist
from repro.data import aol_like

from bench_common import bench_rng, bench_scale, emit, run_once

DELTA = 1e-9
EPS_GRID = [0.2, 0.4, 0.6, 0.8, 1.0]
METHOD_NAMES = ["OLH", "Had", "SH", "SOLH", "AUE", "RAP", "RAP_R", "Lap"]
K = 32


def _experiment() -> str:
    rng = bench_rng()
    data = aol_like(rng, scale=max(bench_scale(), 0.2))
    truth = data.top_k(K)
    header = f"{'method':<7}" + "".join(f"  eps={e:<6}" for e in EPS_GRID)
    lines = [header, "-" * len(header)]
    precisions: dict[str, list[float]] = {}
    for name in METHOD_NAMES:
        row = []
        for eps in EPS_GRID:
            try:
                result = treehist(data, name, eps, DELTA, rng, k=K)
                row.append(precision_at_k(truth, result.discovered))
            except ValueError:
                row.append(float("nan"))
        precisions[name] = row
        cells = "".join(
            f"  {p:<10.2f}" if np.isfinite(p) else f"  {'n/a':<10}" for p in row
        )
        lines.append(f"{name:<7}{cells}")
    lines.append("")
    lines.append(
        f"AOL-like: n={data.n} strings of 48 bits, "
        f"{len(np.unique(data.values))} distinct "
        f"(paper: ~0.5M / ~0.12M; scale={max(bench_scale(), 0.2)}); "
        f"top-{K} precision, TreeHist 6 rounds x 8 bits."
    )

    checks = [
        (
            "SOLH beats OLH at eps=1.0",
            precisions["SOLH"][-1] > precisions["OLH"][-1],
        ),
        (
            "RAP_R >= SOLH at eps=1.0 (2x budget)",
            precisions["RAP_R"][-1] >= precisions["SOLH"][-1],
        ),
        ("SH finds nothing at eps<=1", max(precisions["SH"]) <= 0.1),
        ("Lap nearly perfect at eps=1.0", precisions["Lap"][-1] >= 0.9),
    ]
    lines += [f"  [{'ok' if ok else 'MISMATCH'}] {label}" for label, ok in checks]
    return "\n".join(lines)


def bench_figure4(benchmark):
    """Regenerate Figure 4's precision series."""
    table = run_once(benchmark, _experiment)
    emit("fig4_succinct_histogram", table)
    assert "MISMATCH" not in table
