"""Table III — computation and communication overhead of SS and PEOS.

The paper measures n = 10^6 users on a Xeon with C-backed crypto; this
reproduction runs the *same protocols* (real crypto, pure Python) at a
reduced ``n`` and extrapolates linearly — every per-report cost in both
protocols is linear in the number of reports for a fixed ``r`` (the
``C(r, floor(r/2)+1)`` round structure depends only on ``r``).

Reported per party, for r = 3 and r = 7:
  user comp (ms) / user comm (B) — per user;
  aux comp (s) / aux comm (MB)   — busiest shuffler, extrapolated to 10^6;
  server comp (s) / server comm (MB) — extrapolated to 10^6.

The paper's absolute numbers (Table III) are printed alongside for
comparison; the *shape* to check is PEOS shuffler compute orders of
magnitude below SS shuffler compute (no per-report public-key decryptions)
at the price of more shuffler communication.
"""

from __future__ import annotations

import os

import numpy as np

from repro.costs import CostTracker
from repro.crypto import paillier
from repro.frequency_oracles import SOLH
from repro.hashing import XXHash32Family
from repro.protocol import run_peos
from repro.shuffle import generate_keys, sequential_shuffle

from bench_common import bench_rng, bench_scale, emit, run_once

TARGET_N = 1_000_000

#: Paper's Table III (n = 10^6): metric -> {(protocol, r): value}
PAPER = {
    "user comp (ms)": {("SS", 3): 0.24, ("SS", 7): 0.49, ("PEOS", 3): 1.6, ("PEOS", 7): 1.6},
    "user comm (B)": {("SS", 3): 416, ("SS", 7): 800, ("PEOS", 3): 400, ("PEOS", 7): 432},
    "aux comp (s)": {("SS", 3): 49, ("SS", 7): 50, ("PEOS", 3): 0.2, ("PEOS", 7): 0.7},
    "aux comm (MB)": {("SS", 3): 224, ("SS", 7): 416, ("PEOS", 3): 429.8, ("PEOS", 7): 3293.3},
    "server comp (s)": {("SS", 3): 49, ("SS", 7): 49, ("PEOS", 3): 65, ("PEOS", 7): 65},
    "server comm (MB)": {("SS", 3): 128, ("SS", 7): 128, ("PEOS", 3): 392, ("PEOS", 7): 408},
}


def _bench_n() -> int:
    return int(os.environ.get("REPRO_BENCH_TABLE3_N", max(60, int(600 * bench_scale()))))


def _key_bits() -> int:
    return int(os.environ.get("REPRO_BENCH_KEYBITS", "512"))


def _run_ss(r: int, n: int, rng) -> CostTracker:
    keys = generate_keys(r, rng=2020 + r)
    fo = SOLH(64, 2.0, 8, family=XXHash32Family())
    reports = fo.encode_reports(fo.privatize(rng.integers(0, 64, n), rng))
    tracker = CostTracker()
    sequential_shuffle(
        [int(x) for x in reports], fo.report_space, keys,
        n_fake=0, rng=rng, crypto_rng=7, tracker=tracker,
    )
    return tracker


def _run_peos(r: int, n: int, rng) -> CostTracker:
    pub, priv = paillier.generate_keypair(key_bits=_key_bits(), rng=2020 + r)
    fo = SOLH(64, 2.0, 8, family=XXHash32Family())
    tracker = CostTracker()
    # rerandomize=False reproduces the paper's shuffler cost model
    # ("C(r,t) n/r homomorphic additions"); see the EOS docstring.
    run_peos(
        rng.integers(0, 64, n), fo, r=r, n_fake=0, ahe_public=pub,
        ahe_decrypt=priv.decrypt, rng=rng, crypto_rng=7, tracker=tracker,
        rerandomize=False,
    )
    return tracker


def _rows(tracker: CostTracker, n: int) -> dict[str, float]:
    factor = TARGET_N / n
    user = tracker.cost("user")
    aux = tracker.max_cost("shuffler")
    server = tracker.cost("server")
    return {
        "user comp (ms)": user.compute_seconds / n * 1000,
        "user comm (B)": user.bytes_sent / n,
        "aux comp (s)": aux.compute_seconds * factor,
        "aux comm (MB)": aux.bytes_sent * factor / 1e6,
        "server comp (s)": server.compute_seconds * factor,
        "server comm (MB)": server.bytes_received * factor / 1e6,
    }


def _experiment() -> str:
    rng = bench_rng()
    n = _bench_n()
    measured: dict[tuple[str, int], dict[str, float]] = {}
    for r in (3, 7):
        measured[("SS", r)] = _rows(_run_ss(r, n, rng), n)
        measured[("PEOS", r)] = _rows(_run_peos(r, n, rng), n)

    columns = [("SS", 3), ("SS", 7), ("PEOS", 3), ("PEOS", 7)]
    header = f"{'metric':<18}" + "".join(f"  {p}(r={r}):<meas/paper>" for p, r in columns)
    lines = [
        f"Measured at n={n} (pure-Python crypto, {_key_bits()}-bit Paillier), "
        f"extrapolated linearly to n={TARGET_N}.",
        f"Paper: n=10^6, C crypto, 3072-bit DGK — absolute numbers differ; "
        f"compare shapes.",
        "",
        f"{'metric':<18}" + "".join(f"  {p}-r{r:<14}" for p, r in columns),
    ]
    for metric in PAPER:
        cells = []
        for column in columns:
            meas = measured[column][metric]
            paper = PAPER[metric][column]
            cells.append(f"  {meas:>7.2f}/{paper:<8g}")
        lines.append(f"{metric:<18}" + "".join(cells))
    lines.append("")
    lines.append("cells are measured/paper")

    checks = [
        (
            "PEOS aux compute << SS aux compute (r=3)",
            measured[("PEOS", 3)]["aux comp (s)"]
            < measured[("SS", 3)]["aux comp (s)"] / 5,
        ),
        (
            "PEOS aux communication > SS aux communication (r=7)",
            measured[("PEOS", 7)]["aux comm (MB)"]
            > measured[("SS", 7)]["aux comm (MB)"],
        ),
        (
            "SS user cost grows with r, PEOS user cost does not",
            measured[("SS", 7)]["user comm (B)"]
            > measured[("SS", 3)]["user comm (B)"] * 1.5
            and measured[("PEOS", 7)]["user comm (B)"]
            < measured[("PEOS", 3)]["user comm (B)"] * 1.5,
        ),
    ]
    lines += [f"  [{'ok' if ok else 'MISMATCH'}] {label}" for label, ok in checks]
    return "\n".join(lines)


def bench_table3(benchmark):
    """Regenerate Table III (protocol overhead, measured + extrapolated)."""
    table = run_once(benchmark, _experiment)
    emit("table3_overhead", table)
    assert "MISMATCH" not in table
