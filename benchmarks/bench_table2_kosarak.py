"""Table II — SOLH vs RAP_R on the Kosarak dataset.

Rows reproduced:
* the Eq. (5) optimal ``d'`` of SOLH per eps_c;
* empirical MSE of SOLH at the optimal ``d'``;
* empirical MSE of SOLH at fixed sub-optimal ``d'`` (10 / 100 / 1000) —
  showing the cost of mis-tuning (catastrophic when ``m < d'``);
* empirical MSE of RAP_R (the strongest competitor, at 2x budget).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import mse
from repro.core import solh_optimal_d_prime
from repro.data import kosarak_like
from repro.frequency_oracles import SOLH, make_rap_r

from bench_common import bench_repeats, bench_rng, bench_scale, emit, run_once

DELTA = 1e-9
EPS_GRID = [0.2, 0.4, 0.6, 0.8]
FIXED_D_PRIMES = [10, 100, 1000]


def _mean_mse(method, histogram, truth, rng, repeats) -> float:
    return float(
        np.mean(
            [
                mse(truth, method.estimate_from_histogram(histogram, rng))
                for __ in range(repeats)
            ]
        )
    )


def _experiment() -> str:
    rng = bench_rng()
    data = kosarak_like(rng, scale=bench_scale())
    truth = data.frequencies
    repeats = bench_repeats()

    header = f"{'metric':<22}" + "".join(f"  eps={e:<10}" for e in EPS_GRID)
    lines = [header, "-" * len(header)]

    d_prime_row = [solh_optimal_d_prime(e, data.n, DELTA) for e in EPS_GRID]
    lines.append(
        f"{'SOLH optimal d-prime':<22}" + "".join(f"  {d:<14}" for d in d_prime_row)
    )

    solh_row = []
    for eps_c in EPS_GRID:
        oracle, __ = SOLH.for_central_target(data.d, eps_c, data.n, DELTA)
        solh_row.append(_mean_mse(oracle, data.histogram, truth, rng, repeats))
    lines.append(f"{'SOLH (optimal)':<22}" + "".join(f"  {v:<14.3e}" for v in solh_row))

    fixed_rows: dict[int, list[float]] = {}
    for fixed in FIXED_D_PRIMES:
        row = []
        for eps_c in EPS_GRID:
            oracle, __ = SOLH.for_central_target(
                data.d, eps_c, data.n, DELTA, d_prime=fixed
            )
            row.append(_mean_mse(oracle, data.histogram, truth, rng, repeats))
        fixed_rows[fixed] = row
        lines.append(
            f"{f'SOLH (d-prime={fixed})':<22}" + "".join(f"  {v:<14.3e}" for v in row)
        )

    rap_r_row = []
    for eps_c in EPS_GRID:
        oracle, __ = make_rap_r(data.d, eps_c, data.n, DELTA)
        rap_r_row.append(_mean_mse(oracle, data.histogram, truth, rng, repeats))
    lines.append(f"{'RAP_R':<22}" + "".join(f"  {v:<14.3e}" for v in rap_r_row))

    lines.append("")
    lines.append(
        f"Kosarak-like: n={data.n}, d={data.d} (paper: n=990002, d=42178; "
        f"scale={bench_scale()}), {repeats} repeats."
    )
    lines.append(
        "Communication per report: SOLH 8B (seed+value) vs RAP_R "
        f"{data.d // 8}B (one bit per domain value) — the paper's 8B vs 5KB."
    )

    # Shape checks: mis-tuned d'=1000 is catastrophic at small eps_c (the
    # bound admits no amplification there); RAP_R is the accuracy winner.
    ok_fixed = solh_row[0] < fixed_rows[1000][0] / 10
    ok_rap = sum(r < s for r, s in zip(rap_r_row, solh_row)) >= 3
    lines.append(
        f"  [{'ok' if ok_fixed else 'MISMATCH'}] optimal d' beats fixed d'=1000 "
        "by >10x at eps_c=0.2"
    )
    lines.append(
        f"  [{'ok' if ok_rap else 'MISMATCH'}] RAP_R more accurate than SOLH "
        "(it spends 2x the budget)"
    )
    return "\n".join(lines)


def bench_table2(benchmark):
    """Regenerate Table II (d' choices and utility comparison)."""
    table = run_once(benchmark, _experiment)
    emit("table2_kosarak", table)
    assert "MISMATCH" not in table
