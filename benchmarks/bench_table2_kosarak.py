"""Table II — SOLH vs RAP_R on the Kosarak dataset.

Rows reproduced:
* the Eq. (5) optimal ``d'`` of SOLH per eps_c;
* empirical MSE of SOLH at the optimal ``d'``;
* empirical MSE of SOLH at fixed sub-optimal ``d'`` (10 / 100 / 1000) —
  showing the cost of mis-tuning (catastrophic when ``m < d'``);
* empirical MSE of RAP_R (the strongest competitor, at 2x budget).
"""

from __future__ import annotations

from repro.analysis import SweepResult, mse
from repro.api import SweepResultSet
from repro.core import solh_optimal_d_prime
from repro.data import kosarak_like
from repro.frequency_oracles import SOLH, make_rap_r

from bench_common import (
    BenchResult,
    bench_repeats,
    bench_rng,
    bench_scale,
    bench_workers,
    emit,
    run_once,
    standalone_main,
)

DELTA = 1e-9
EPS_GRID = [0.2, 0.4, 0.6, 0.8]
FIXED_D_PRIMES = [10, 100, 1000]


def _experiment() -> BenchResult:
    from repro.analysis import run_trial_plan

    rng = bench_rng()
    data = kosarak_like(rng, scale=bench_scale())
    repeats = bench_repeats()

    header = f"{'metric':<22}" + "".join(f"  eps={e:<10}" for e in EPS_GRID)
    lines = [header, "-" * len(header)]

    d_prime_row = [solh_optimal_d_prime(e, data.n, DELTA) for e in EPS_GRID]
    lines.append(
        f"{'SOLH optimal d-prime':<22}" + "".join(f"  {d:<14}" for d in d_prime_row)
    )

    # One trial-plan cell per table row and eps; the engine runs them all
    # (optionally in parallel) with per-trial seeding, then the rows are
    # read back out of the score matrix in plan order.
    variants: list[tuple] = [("SOLH (optimal)", None)]
    variants += [(f"SOLH (d-prime={fixed})", fixed) for fixed in FIXED_D_PRIMES]
    methods = []
    for __, fixed in variants:
        for eps_c in EPS_GRID:
            oracle, ___ = SOLH.for_central_target(
                data.d, eps_c, data.n, DELTA, d_prime=fixed
            )
            methods.append(oracle)
    for eps_c in EPS_GRID:
        oracle, ___ = make_rap_r(data.d, eps_c, data.n, DELTA)
        methods.append(oracle)

    scores = run_trial_plan(
        methods, data.histogram, repeats, rng, metric=mse,
        workers=bench_workers(),
    )
    means = scores.mean(axis=1)
    n_eps = len(EPS_GRID)

    rows = {
        label: list(means[i * n_eps:(i + 1) * n_eps])
        for i, (label, __) in enumerate(variants)
    }
    rap_r_row = list(means[len(variants) * n_eps:])
    solh_row = rows["SOLH (optimal)"]
    fixed_rows = {
        fixed: rows[f"SOLH (d-prime={fixed})"] for fixed in FIXED_D_PRIMES
    }
    for label, __ in variants:
        lines.append(
            f"{label:<22}" + "".join(f"  {v:<14.3e}" for v in rows[label])
        )
    lines.append(f"{'RAP_R':<22}" + "".join(f"  {v:<14.3e}" for v in rap_r_row))

    lines.append("")
    lines.append(
        f"Kosarak-like: n={data.n}, d={data.d} (paper: n=990002, d=42178; "
        f"scale={bench_scale()}), {repeats} repeats."
    )
    lines.append(
        "Communication per report: SOLH 8B (seed+value) vs RAP_R "
        f"{data.d // 8}B (one bit per domain value) — the paper's 8B vs 5KB."
    )

    # Shape checks: mis-tuned d'=1000 is catastrophic at small eps_c (the
    # bound admits no amplification there); RAP_R is the accuracy winner.
    ok_fixed = solh_row[0] < fixed_rows[1000][0] / 10
    ok_rap = sum(r < s for r, s in zip(rap_r_row, solh_row)) >= 3
    lines.append(
        f"  [{'ok' if ok_fixed else 'MISMATCH'}] optimal d' beats fixed d'=1000 "
        "by >10x at eps_c=0.2"
    )
    lines.append(
        f"  [{'ok' if ok_rap else 'MISMATCH'}] RAP_R more accurate than SOLH "
        "(it spends 2x the budget)"
    )

    # Structured form in the shared sweep schema: one labeled row per
    # table variant (the labels are not registry names — ablation rows).
    stds = scores.std(axis=1)
    row_labels = [label for label, __ in variants] + ["RAP_R"]
    sweep = SweepResultSet(
        results=tuple(
            SweepResult(
                method=label,
                eps_values=list(EPS_GRID),
                means=[float(v) for v in means[i * n_eps:(i + 1) * n_eps]],
                stds=[float(v) for v in stds[i * n_eps:(i + 1) * n_eps]],
            )
            for i, label in enumerate(row_labels)
        ),
        eps_values=tuple(EPS_GRID),
        delta=DELTA,
        repeats=repeats,
        workers=bench_workers(),
        metric="mse",
        d=data.d,
        n=data.n,
    )
    return BenchResult(
        table="\n".join(lines),
        sweep=sweep,
        extra={
            "solh_optimal_d_prime": [int(v) for v in d_prime_row],
            "shape_checks": {
                "optimal_dprime_beats_fixed_1000": bool(ok_fixed),
                "rap_r_beats_solh": bool(ok_rap),
            },
        },
    )


def bench_table2(benchmark):
    """Regenerate Table II (d' choices and utility comparison)."""
    result = run_once(benchmark, _experiment)
    emit("table2_kosarak", result)
    assert "MISMATCH" not in result.table


if __name__ == "__main__":
    raise SystemExit(standalone_main("table2_kosarak", _experiment))
