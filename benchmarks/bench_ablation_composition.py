"""Ablation — budget allocation across TreeHist rounds.

The paper divides ``eps_c`` evenly across the 6 TreeHist rounds (basic
sequential composition).  This ablation measures the extension of using
advanced composition instead: at 6 rounds the advanced bound is *worse*
than basic (the sqrt overhead dominates), so the allocator falls back —
but with finer rounds (more, shorter prefix extensions) advanced
composition starts paying.  The bench reports per-round budgets and
achieved precision for both allocations at two round granularities.
"""

from __future__ import annotations

from repro.analysis import precision_at_k, treehist
from repro.core import split_budget
from repro.data import aol_like

from bench_common import bench_rng, bench_scale, emit, run_once

DELTA = 1e-9
EPS = 1.0
K = 32


def _experiment() -> str:
    rng = bench_rng()
    data = aol_like(rng, scale=max(bench_scale(), 0.2))
    truth = data.top_k(K)
    lines = [
        f"AOL-like n={data.n}; eps={EPS}, top-{K} precision with SOLH",
        f"{'rounds':>7}  {'method':>9}  {'eps/round':>10}  {'precision':>10}",
    ]
    results = {}
    for bits_per_round, rounds in ((8, 6), (4, 12)):
        for method in ("basic", "advanced"):
            split = split_budget(EPS, DELTA, rounds, method=method)
            result = treehist(
                data, "SOLH", EPS, DELTA, rng, k=K,
                bits_per_round=bits_per_round, composition=method,
            )
            precision = precision_at_k(truth, result.discovered)
            results[(rounds, method)] = (split, precision)
            lines.append(
                f"{rounds:>7}  {method:>9}  {split.eps_per_round:>10.4f}  "
                f"{precision:>10.2f}"
            )

    # Shape checks: the allocator never does worse than basic (it falls
    # back), and the per-round budget under "advanced" is >= basic's.
    ok_budget = all(
        results[(rounds, "advanced")][0].eps_per_round
        >= results[(rounds, "basic")][0].eps_per_round - 1e-12
        for rounds in (6, 12)
    )
    ok_precision = (
        results[(12, "advanced")][1] >= results[(12, "basic")][1] - 0.15
    )
    lines.append(
        f"  [{'ok' if ok_budget else 'MISMATCH'}] advanced allocation never "
        "below basic per-round budget (fallback rule)"
    )
    lines.append(
        f"  [{'ok' if ok_precision else 'MISMATCH'}] advanced allocation "
        "precision comparable or better at 12 rounds"
    )
    return "\n".join(lines)


def bench_ablation_composition(benchmark):
    """Measure the optional advanced-composition TreeHist allocation."""
    table = run_once(benchmark, _experiment)
    emit("ablation_composition", table)
    assert "MISMATCH" not in table
