"""Shared plumbing for the benchmark harness.

Every ``bench_*`` module reproduces one table or figure of the paper.  The
experiments run once per pytest invocation (``benchmark.pedantic`` with a
single round — re-running a full sweep dozens of times would measure
nothing new), print the paper-style table to stdout, and append it to
``benchmarks/results/<name>.txt`` so the output survives pytest's capture.

Environment knobs:

* ``REPRO_BENCH_SCALE``  — population scale factor (default 0.1; ``1.0``
  reproduces the paper's n exactly and takes correspondingly longer).
* ``REPRO_BENCH_REPEATS`` — per-point repetitions (default 5; the paper
  used 100).
* ``REPRO_BENCH_SEED``   — RNG seed (default 2020, the paper's year).
* ``REPRO_BENCH_WORKERS`` — trial-plan worker threads for the sweep
  benches (default 1; results are bit-identical at any worker count).

Sweep benches are also runnable standalone (``python
benchmarks/bench_fig3_frequency_estimation.py --workers 4 --json out``),
which is what the CI benchmark smoke job uses; :func:`standalone_main`
implements the shared argument parsing and JSON emission.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path
from typing import Callable

import numpy as np

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))


def bench_repeats() -> int:
    return int(os.environ.get("REPRO_BENCH_REPEATS", "5"))


def bench_workers() -> int:
    return int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def bench_rng() -> np.random.Generator:
    return np.random.default_rng(int(os.environ.get("REPRO_BENCH_SEED", "2020")))


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    banner = f"\n=== {name} ===\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / f"{name}.txt", "w") as handle:
        handle.write(banner)


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)


def emit_json(name: str, payload: dict, path: str = None) -> Path:
    """Persist a machine-readable result under benchmarks/results/."""
    target = Path(path) if path else RESULTS_DIR / f"{name}.json"
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target


def standalone_main(name: str, experiment: Callable[[], str], argv=None) -> int:
    """Shared CLI for running one sweep bench outside pytest.

    Parses the common knobs, exports them through the ``REPRO_BENCH_*``
    environment (the single configuration channel, so pytest and
    standalone runs read identical settings), runs the experiment once,
    prints the table, and optionally writes a JSON result record — the
    artifact the CI benchmark smoke job uploads.
    """
    parser = argparse.ArgumentParser(
        prog=name, description=f"Run the {name} benchmark standalone."
    )
    parser.add_argument("--scale", type=float, default=bench_scale(),
                        help="population scale vs the paper's n")
    parser.add_argument("--repeats", type=int, default=bench_repeats())
    parser.add_argument("--seed", type=int,
                        default=int(os.environ.get("REPRO_BENCH_SEED", "2020")))
    parser.add_argument("--workers", type=int, default=bench_workers(),
                        help="trial-plan worker threads (bit-identical "
                             "results at any worker count)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write a JSON result record (default "
                             f"benchmarks/results/{name}.json)")
    args = parser.parse_args(argv)

    os.environ["REPRO_BENCH_SCALE"] = repr(args.scale)
    os.environ["REPRO_BENCH_REPEATS"] = str(args.repeats)
    os.environ["REPRO_BENCH_SEED"] = str(args.seed)
    os.environ["REPRO_BENCH_WORKERS"] = str(args.workers)

    started = time.perf_counter()
    table = experiment()
    elapsed = time.perf_counter() - started
    emit(name, table)
    target = emit_json(name, {
        "name": name,
        "elapsed_seconds": elapsed,
        "scale": args.scale,
        "repeats": args.repeats,
        "seed": args.seed,
        "workers": args.workers,
        "table": table,
    }, path=args.json)
    print(f"[{name}] {elapsed:.2f}s with workers={args.workers}; "
          f"JSON written to {target}")
    return 0
