"""Shared plumbing for the benchmark harness.

Every ``bench_*`` module reproduces one table or figure of the paper.  The
experiments run once per pytest invocation (``benchmark.pedantic`` with a
single round — re-running a full sweep dozens of times would measure
nothing new), print the paper-style table to stdout, and persist **two**
artifacts per bench through one shared writer:

* ``benchmarks/results/<name>.txt`` — the human-readable table;
* ``benchmarks/results/<name>.json`` — a machine-readable record in the
  single shared envelope (:data:`BENCH_SCHEMA`): run parameters, elapsed
  time, the table text, an optional structured sweep in the facade's
  ``SweepResultSet.to_dict()`` schema, and a free-form ``extra`` dict.
  Every bench emits this same schema (``tests/test_bench_schema.py``
  enforces both the envelope shape and that no bench writes JSON on the
  side).

An experiment callable returns either a plain table string or a
:class:`BenchResult` carrying the structured parts.

Environment knobs:

* ``REPRO_BENCH_SCALE``  — population scale factor (default 0.1; ``1.0``
  reproduces the paper's n exactly and takes correspondingly longer).
* ``REPRO_BENCH_REPEATS`` — per-point repetitions (default 5; the paper
  used 100).
* ``REPRO_BENCH_SEED``   — RNG seed (default 2020, the paper's year).
* ``REPRO_BENCH_WORKERS`` — trial-plan worker threads for the sweep
  benches (default 1; results are bit-identical at any worker count).
* ``REPRO_BENCH_SHARDS`` — fold shards for the sharded streaming bench
  (default 4; results are bit-identical at any shard count).

Sweep benches are also runnable standalone (``python
benchmarks/bench_fig3_frequency_estimation.py --workers 4 --json out``),
which is what the CI benchmark smoke job uses; :func:`standalone_main`
implements the shared argument parsing.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Union

import numpy as np

RESULTS_DIR = Path(__file__).parent / "results"

#: schema tag of the shared benchmark JSON envelope
BENCH_SCHEMA = "repro.bench/1"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))


def bench_repeats() -> int:
    return int(os.environ.get("REPRO_BENCH_REPEATS", "5"))


def bench_workers() -> int:
    return int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def bench_shards() -> int:
    return int(os.environ.get("REPRO_BENCH_SHARDS", "4"))


def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "2020"))


def bench_rng() -> np.random.Generator:
    return np.random.default_rng(bench_seed())


@dataclass
class BenchResult:
    """What one benchmark experiment produced.

    ``table`` is the paper-style text; ``sweep`` (optional) is a
    ``repro.api.SweepResultSet`` — anything with a matching ``to_dict()``
    — for structured downstream consumption; ``extra`` holds bench-specific
    machine-readable values (throughput numbers, shape-check verdicts).
    """

    table: str
    sweep: Optional[object] = None
    extra: dict = field(default_factory=dict)


def _coerce(result: Union[str, BenchResult]) -> BenchResult:
    if isinstance(result, BenchResult):
        return result
    return BenchResult(table=str(result))


def _portable(value):
    """Map non-finite floats to null recursively: bare ``NaN`` tokens are
    invalid JSON (RFC 8259) and break non-Python consumers of the CI
    artifacts (jq, JSON.parse, ...)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _portable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_portable(item) for item in value]
    return value


def write_bench_json(
    name: str,
    result: BenchResult,
    elapsed: Optional[float] = None,
    path: Optional[str] = None,
) -> Path:
    """Persist one bench's machine-readable record — the single JSON schema.

    Every key is always present (None/{} when not applicable), so
    consumers never need per-bench special cases.  Output is strict
    RFC-8259 JSON: non-finite floats (infeasible sweep cells) serialize
    as null.
    """
    payload = {
        "schema": BENCH_SCHEMA,
        "name": name,
        "params": {
            "scale": bench_scale(),
            "repeats": bench_repeats(),
            "seed": bench_seed(),
            "workers": bench_workers(),
            "shards": bench_shards(),
        },
        "elapsed_seconds": elapsed,
        "table": result.table,
        "sweep": result.sweep.to_dict() if result.sweep is not None else None,
        "extra": dict(result.extra),
    }
    target = Path(path) if path else RESULTS_DIR / f"{name}.json"
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w") as handle:
        json.dump(_portable(payload), handle, indent=2, sort_keys=True,
                  allow_nan=False)
        handle.write("\n")
    return target


def emit(
    name: str,
    result: Union[str, BenchResult],
    elapsed: Optional[float] = None,
    json_path: Optional[str] = None,
) -> Path:
    """Print a result table and persist both artifacts (.txt + .json)."""
    result = _coerce(result)
    banner = f"\n=== {name} ===\n{result.table}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / f"{name}.txt", "w") as handle:
        handle.write(banner)
    return write_bench_json(name, result, elapsed=elapsed, path=json_path)


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)


def standalone_main(
    name: str,
    experiment: Callable[[], Union[str, BenchResult]],
    argv=None,
) -> int:
    """Shared CLI for running one sweep bench outside pytest.

    Parses the common knobs, exports them through the ``REPRO_BENCH_*``
    environment (the single configuration channel, so pytest and
    standalone runs read identical settings), runs the experiment once,
    prints the table, and writes the shared-schema JSON record — the
    artifact the CI benchmark smoke job uploads.
    """
    parser = argparse.ArgumentParser(
        prog=name, description=f"Run the {name} benchmark standalone."
    )
    parser.add_argument("--scale", type=float, default=bench_scale(),
                        help="population scale vs the paper's n")
    parser.add_argument("--repeats", type=int, default=bench_repeats())
    parser.add_argument("--seed", type=int, default=bench_seed())
    parser.add_argument("--workers", type=int, default=bench_workers(),
                        help="trial-plan worker threads (bit-identical "
                             "results at any worker count)")
    parser.add_argument("--shards", type=int, default=bench_shards(),
                        help="fold shards for the sharded streaming bench "
                             "(bit-identical results at any shard count)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the shared-schema JSON record here "
                             f"(default benchmarks/results/{name}.json)")
    args = parser.parse_args(argv)

    os.environ["REPRO_BENCH_SCALE"] = repr(args.scale)
    os.environ["REPRO_BENCH_REPEATS"] = str(args.repeats)
    os.environ["REPRO_BENCH_SEED"] = str(args.seed)
    os.environ["REPRO_BENCH_WORKERS"] = str(args.workers)
    os.environ["REPRO_BENCH_SHARDS"] = str(args.shards)

    started = time.perf_counter()
    result = _coerce(experiment())
    elapsed = time.perf_counter() - started
    target = emit(name, result, elapsed=elapsed, json_path=args.json)
    print(f"[{name}] {elapsed:.2f}s with workers={args.workers}; "
          f"JSON written to {target}")
    return 0
