"""Shared plumbing for the benchmark harness.

Every ``bench_*`` module reproduces one table or figure of the paper.  The
experiments run once per pytest invocation (``benchmark.pedantic`` with a
single round — re-running a full sweep dozens of times would measure
nothing new), print the paper-style table to stdout, and append it to
``benchmarks/results/<name>.txt`` so the output survives pytest's capture.

Environment knobs:

* ``REPRO_BENCH_SCALE``  — population scale factor (default 0.1; ``1.0``
  reproduces the paper's n exactly and takes correspondingly longer).
* ``REPRO_BENCH_REPEATS`` — per-point repetitions (default 5; the paper
  used 100).
* ``REPRO_BENCH_SEED``   — RNG seed (default 2020, the paper's year).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))


def bench_repeats() -> int:
    return int(os.environ.get("REPRO_BENCH_REPEATS", "5"))


def bench_rng() -> np.random.Generator:
    return np.random.default_rng(int(os.environ.get("REPRO_BENCH_SEED", "2020")))


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    banner = f"\n=== {name} ===\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / f"{name}.txt", "w") as handle:
        handle.write(banner)


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
