"""HTTP front-door ingest throughput: many clients, several epochs.

Simulates a fleet of telemetry producers pushing batched reports into
``repro.server`` over concurrent keep-alive connections: each client
submits its share of every epoch through ``POST /api/reports``, the
epoch is closed through ``POST /api/epochs``, and the released estimates
are read back through the paginated ``GET /api/estimates`` cursor walk.
Recorded in the shared ``repro.bench/1`` envelope: accepted reports/sec,
p50/p99 ingest acknowledgment latency, and the HTTP 429 backpressure
count (the bench retries a 429 after its ``Retry-After``, so every
report is eventually accepted — backpressure sheds *load*, not data).

**Identity gate.** Privatization consumes the ingest RNG in arrival
order, so the server run is replayable: every 202 carries its
``submit_seq``, and the bench replays the recorded batches in exactly
that order into an in-process :class:`repro.service.ShardedPipeline`
built from the server's own ``GET /api/config`` payload at the same
seed. The per-epoch estimates served over HTTP must equal the replay's
bit for bit (JSON float serialization is shortest-round-trip, so
equality is exact); the bench raises otherwise.

Two modes:

* default — the bench starts an in-process server on a free port
  (``ShuffleSession.serve(..., port=0)``);
* ``REPRO_BENCH_SERVER_URL=host:port`` — drive an externally started
  ``repro serve`` (the CI server-smoke job does this); the server must
  be running with the same ``--seed`` as ``REPRO_BENCH_SEED``.

Extra knobs: ``REPRO_BENCH_SERVER_CLIENTS`` (default 8, concurrent
connections), ``REPRO_BENCH_SERVER_EPOCHS`` (default 3), and
``REPRO_BENCH_SERVER_MAX_PENDING`` (default 32, the in-process server's
ingest-queue bound). Standalone:
``python benchmarks/bench_server_ingest.py --scale 0.1 --shards 2``.
"""

from __future__ import annotations

import asyncio
import os
import time
from urllib.parse import urlsplit

import numpy as np

from repro.data import zipf_histogram
from repro.data.synthetic import values_from_histogram
from repro.persistence.records import config_from_dict
from repro.server import ServerClient, fetch_all_estimates
from repro.service import ShardedPipeline

from bench_common import (
    BenchResult,
    bench_scale,
    bench_seed,
    bench_shards,
    emit,
    run_once,
    standalone_main,
)

D = 64
DELTA = 1e-9
EPS_TARGETS = (1.0, 3.0, 6.0)
ZIPF_EXPONENT = 1.3
BATCH = 200
BASE_BATCHES_PER_CLIENT = 40  # at scale 1.0


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, str(default)))


def _client_batches(seed, cid, epoch, batches, d):
    """One client's deterministic per-epoch workload (Zipf-shaped)."""
    rng = np.random.default_rng((seed, 1000 + cid, epoch))
    return [
        values_from_histogram(
            zipf_histogram(BATCH, d, ZIPF_EXPONENT, rng), rng
        )
        for __ in range(batches)
    ]


#: attempt-bounded backoff for the bench's 429 handling — tight caps so
#: CI wall time stays flat, many attempts so no report is ever dropped
_RETRY = dict(max_attempts=64, base_delay_s=0.01, max_delay_s=0.25)


def _count_429(stats):
    def on_retry(response, _delay_s):
        if response.status == 429:
            stats["n_429"] += 1

    return on_retry


async def _submit_batches(client, value_batches, recorded, latencies, stats):
    """Push one client's epoch share; 429s are retried, never dropped."""
    for values in value_batches:
        started = time.perf_counter()
        response = await client.request_with_retry(
            "POST", "/api/reports",
            {"values": [int(v) for v in values]},
            retry_statuses=(429,), on_retry=_count_429(stats), **_RETRY,
        )
        elapsed = time.perf_counter() - started
        if response.status != 202:
            raise RuntimeError(
                f"upload refused with HTTP {response.status}: "
                f"{response.body}"
            )
        latencies.append(elapsed)
        recorded.append((response.body["submit_seq"], values))


async def _close_epoch(client, stats):
    response = await client.request_with_retry(
        "POST", "/api/epochs",
        retry_statuses=(429,), on_retry=_count_429(stats), **_RETRY,
    )
    if response.status != 200:
        raise RuntimeError(
            f"epoch close refused with HTTP {response.status}: "
            f"{response.body}"
        )
    return response.body


async def _drive(host, port, n_clients, epochs, batches, seed):
    """The load generator; returns measurements + the replay transcript."""
    clients = [ServerClient(host, port) for __ in range(n_clients)]
    for client in clients:
        await client.connect()
    try:
        deployment = (await clients[0].config())["deployment"]
        d = int(deployment["d"])
        latencies: list = []
        stats = {"n_429": 0}
        epoch_batches: list = []  # [epoch][(seq, values)...]
        started = time.perf_counter()
        for epoch in range(epochs):
            recorded: list = []
            await asyncio.gather(*(
                _submit_batches(
                    client,
                    _client_batches(seed, cid, epoch, batches, d),
                    recorded, latencies, stats,
                )
                for cid, client in enumerate(clients)
            ))
            await _close_epoch(clients[0], stats)
            recorded.sort(key=lambda pair: pair[0])
            epoch_batches.append(recorded)
        wall = time.perf_counter() - started
        items = await fetch_all_estimates(clients[0])
        health = await clients[0].health()
    finally:
        for client in clients:
            await client.close()
    return {
        "deployment": deployment,
        "latencies": latencies,
        "n_429": stats["n_429"],
        "epoch_batches": epoch_batches,
        "wall_seconds": wall,
        "items": items,
        "health": health,
    }


def _replay_estimates(deployment, epoch_batches, seed, shards):
    """The recorded ingest order, replayed into an in-process pipeline."""
    config = config_from_dict(deployment)
    with ShardedPipeline(
        config, np.random.default_rng(seed),
        n_shards=shards, fold_backend="serial",
    ) as pipeline:
        for recorded in epoch_batches:
            for __, values in recorded:
                pipeline.submit(values)
            pipeline.end_epoch()
        return {
            int(epoch): [float(x) for x in estimates]
            for epoch, estimates in pipeline.store.epoch_log()
        }


def _served_estimates(items) -> dict:
    served: dict = {}
    for item in items:
        served.setdefault(int(item["epoch"]), []).append(
            (int(item["index"]), float(item["estimate"]))
        )
    return {
        epoch: [value for __, value in sorted(rows)]
        for epoch, rows in served.items()
    }


def _experiment() -> BenchResult:
    seed = bench_seed()
    shards = bench_shards()
    n_clients = _env_int("REPRO_BENCH_SERVER_CLIENTS", 8)
    epochs = _env_int("REPRO_BENCH_SERVER_EPOCHS", 3)
    max_pending = _env_int("REPRO_BENCH_SERVER_MAX_PENDING", 32)
    batches = max(2, int(BASE_BATCHES_PER_CLIENT * bench_scale()))
    epoch_size = n_clients * batches * BATCH
    flush_size = max(200, epoch_size // 4)
    external = os.environ.get("REPRO_BENCH_SERVER_URL")

    async def run() -> dict:
        if external:
            split = urlsplit(
                external if "//" in external else f"//{external}"
            )
            return await _drive(
                split.hostname, split.port, n_clients, epochs, batches, seed
            )
        from repro.api import DeploymentConfig, PrivacyBudget, ShuffleSession

        server = ShuffleSession(
            DeploymentConfig(mechanism="auto", d=D),
            PrivacyBudget(eps=EPS_TARGETS[0], delta=DELTA),
        ).serve(
            flush_size,
            port=0,
            max_pending=max_pending,
            eps_targets=EPS_TARGETS,
            epoch_size=epoch_size,
            admitted_epochs=epochs,
            shards=shards,
            backend="serial",
            seed=seed,
        )
        async with server:
            return await _drive(
                "127.0.0.1", server.port, n_clients, epochs, batches, seed
            )

    measured = asyncio.run(run())

    served = _served_estimates(measured["items"])
    replayed = _replay_estimates(
        measured["deployment"], measured["epoch_batches"], seed, shards
    )
    identical = served == replayed

    latencies = np.asarray(measured["latencies"], dtype=np.float64)
    accepted_reports = sum(
        len(values)
        for recorded in measured["epoch_batches"]
        for __, values in recorded
    )
    wall = measured["wall_seconds"]
    rate = accepted_reports / wall if wall > 0 else None
    p50 = float(np.percentile(latencies, 50)) if latencies.size else None
    p99 = float(np.percentile(latencies, 99)) if latencies.size else None

    extra = {
        "mode": "external" if external else "in-process",
        "d": int(measured["deployment"]["d"]),
        "clients": n_clients,
        "epochs": epochs,
        "batches_per_client": batches,
        "batch_size": BATCH,
        "max_pending": max_pending,
        "shards": shards,
        "accepted_batches": len(latencies),
        "accepted_reports": accepted_reports,
        "ingest_wall_seconds": wall,
        "reports_per_sec": rate,
        "p50_latency_s": p50,
        "p99_latency_s": p99,
        "n_429": measured["n_429"],
        "estimate_rows_served": len(measured["items"]),
        "estimates_identical": bool(identical),
        "health": measured["health"],
    }

    def fmt(value, spec) -> str:
        return format(value, spec) if value is not None else "n/a"

    table = (
        f"HTTP ingest ({extra['mode']}): {n_clients} clients x "
        f"{batches} batches x {BATCH} reports over {epochs} epoch(s), "
        f"queue bound {max_pending}\n"
        f"accepted          : {accepted_reports:,} reports in "
        f"{len(latencies):,} batches ({wall:.2f}s wall)\n"
        f"throughput        : {fmt(rate, ',.0f')} reports/s\n"
        f"ack latency       : p50 {fmt(p50 and p50 * 1e3, '.2f')} ms, "
        f"p99 {fmt(p99 and p99 * 1e3, '.2f')} ms\n"
        f"backpressure      : {measured['n_429']} HTTP 429(s), every "
        f"report retried until accepted\n"
        f"served estimates  : {len(measured['items'])} rows over "
        f"{len(served)} epoch(s)\n"
        f"HTTP == in-process replay (same seed, seq order): "
        f"{'yes' if identical else 'NO — IDENTITY VIOLATION'}"
    )
    if not identical:
        raise AssertionError(
            "estimates served over HTTP differ from the in-process "
            "replay at the same seed:\n" + table
        )
    return BenchResult(table=table, extra=extra)


def bench_server_ingest(benchmark):
    """Measure HTTP ingest throughput and pin the replay identity."""
    result = run_once(benchmark, _experiment)
    emit("server_ingest", result)
    assert result.extra["estimates_identical"]
    assert result.extra["accepted_reports"] > 0


if __name__ == "__main__":
    raise SystemExit(standalone_main("server_ingest", _experiment))
