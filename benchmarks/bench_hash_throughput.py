"""Hash-family throughput and support-count kernel memory profile.

Measures the server-side decode building blocks the kernel engine
(:mod:`repro.hashing.kernels`) rebuilt:

* ``hash_outer`` throughput (hashes/sec) for every family at the
  acceptance shape ``n=10^4 seeds x d=128 values`` — the O(n*d) inner
  product of OLH/SOLH aggregation;
* the scalar xxHash32 baseline (the pre-kernel ``XXHash32Family`` hot
  path: one ``xxhash32_int`` call per cell) at the same shape, and the
  resulting vectorized-over-scalar speedup — gated at >= 50x;
* a bit-for-bit identity check of the vectorized XXH32 against the
  scalar reference on a sampled ``(seed, value)`` grid, plus a
  kernel-vs-naive-materialization identity check of ``support_counts``
  for every family — both land in ``extra`` and CI asserts them from
  the JSON artifact;
* the planned peak intermediate bytes of one support-count invocation at
  the acceptance shape, next to the bytes the legacy
  materialize-compare-sum loop would have touched (int64 matrix + bool
  mask = 9 bytes/hash).

The acceptance shape is fixed (it is part of the PR's contract), so this
bench ignores ``REPRO_BENCH_SCALE``.  Standalone:
``python benchmarks/bench_hash_throughput.py --json out.json``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.hashing import (
    CarterWegmanHashFamily,
    MultiplyShiftHashFamily,
    XXHash32Family,
    plan_support_counts,
    support_counts_kernel,
)
from repro.hashing.kernels import DEFAULT_CHUNK_BYTES
from repro.hashing.xxhash32 import xxhash32_int

from bench_common import BenchResult, bench_seed, emit, run_once, standalone_main

#: the acceptance-criteria shape: 10^4 reports over a 128-value domain
N_SEEDS = 10_000
N_VALUES = 128
D_OUT = 16

#: sampled grid for the scalar-vs-vectorized identity assert
IDENTITY_SAMPLES = 256

#: minimum vectorized-over-scalar speedup the kernel engine must deliver
MIN_XXH32_SPEEDUP = 50.0

FAMILIES = (CarterWegmanHashFamily(), MultiplyShiftHashFamily(), XXHash32Family())

#: bytes per hash the legacy materialize-compare-sum loop touched
#: (int64 hash matrix + boolean match mask)
LEGACY_BYTES_PER_HASH = 9


def _time_outer(family, seeds, values, repeats: int = 3) -> float:
    """Best-of-N wall time of one full ``hash_outer`` evaluation."""
    best = float("inf")
    for __ in range(repeats):
        started = time.perf_counter()
        family.hash_outer(seeds, values, D_OUT)
        best = min(best, time.perf_counter() - started)
    return best


def _scalar_xxh32_outer(seeds, values) -> tuple:
    """The pre-kernel XXHash32Family hot path: one scalar call per cell."""
    out = np.empty((len(seeds), len(values)), dtype=np.int64)
    started = time.perf_counter()
    for i, seed in enumerate(seeds):
        seed = int(seed)
        out[i] = [xxhash32_int(int(v), seed) % D_OUT for v in values]
    return out, time.perf_counter() - started


def _xxh32_identity(rng) -> bool:
    """Vectorized XXH32 == scalar reference on a sampled (seed, value) grid."""
    family = XXHash32Family()
    sample_seeds = rng.integers(0, 1 << 32, IDENTITY_SAMPLES, dtype=np.uint64)
    sample_values = rng.integers(0, 1 << 62, IDENTITY_SAMPLES, dtype=np.uint64)
    vectorized = family.hash_pairwise(sample_seeds, sample_values, D_OUT)
    scalar = [
        family.hash_value(int(s), int(v), D_OUT)
        for s, v in zip(sample_seeds, sample_values)
    ]
    return vectorized.tolist() == scalar


def _kernel_identity(family, rng) -> bool:
    """Kernel counts == naive materialized counts on random reports."""
    seeds = family.sample_seeds(400, rng)
    reported = rng.integers(0, D_OUT, 400)
    candidates = np.arange(64)
    kernel = support_counts_kernel(family, seeds, reported, candidates, D_OUT)
    naive = (
        (family.hash_outer(seeds, candidates, D_OUT) == reported[:, None])
        .sum(axis=0)
    )
    return kernel.tolist() == naive.tolist()


def _experiment() -> BenchResult:
    rng = np.random.default_rng(bench_seed())
    values = np.arange(N_VALUES, dtype=np.int64)
    total = N_SEEDS * N_VALUES

    lines = [
        f"hash_outer at n={N_SEEDS} seeds x d={N_VALUES} values "
        f"(d_out={D_OUT}); support-count kernel memory at the same shape",
        f"{'family':<16}  {'hashes/sec':>14}  {'peak kernel bytes':>18}  "
        f"{'legacy bytes':>13}",
    ]
    extra = {
        "n_seeds": N_SEEDS,
        "n_values": N_VALUES,
        "d_out": D_OUT,
        "families": {},
    }
    for family in FAMILIES:
        seeds = family.sample_seeds(N_SEEDS, rng)
        family.hash_outer(seeds[:64], values, D_OUT)  # warm the path
        elapsed = _time_outer(family, seeds, values)
        plan = plan_support_counts(N_SEEDS, N_VALUES, D_OUT)
        # The legacy loop chunked by its own formula (8-byte rows), not the
        # kernel planner's — size its footprint accordingly.
        legacy_chunk = min(N_SEEDS, max(1, DEFAULT_CHUNK_BYTES // (8 * N_VALUES)))
        legacy_bytes = LEGACY_BYTES_PER_HASH * legacy_chunk * N_VALUES
        extra["families"][family.name] = {
            "hashes_per_sec": total / elapsed,
            "outer_seconds": elapsed,
            "peak_intermediate_bytes": plan.peak_intermediate_bytes,
            "legacy_intermediate_bytes": legacy_bytes,
            "kernel_identity": _kernel_identity(family, rng),
        }
        lines.append(
            f"{family.name:<16}  {total / elapsed:>14,.0f}  "
            f"{plan.peak_intermediate_bytes:>18,}  {legacy_bytes:>13,}"
        )

    xxh = XXHash32Family()
    seeds = xxh.sample_seeds(N_SEEDS, rng)
    scalar_matrix, scalar_s = _scalar_xxh32_outer(seeds, values)
    vectorized_matrix = xxh.hash_outer(seeds, values, D_OUT)
    vector_s = extra["families"][xxh.name]["outer_seconds"]
    speedup = scalar_s / vector_s
    outer_identical = bool(np.array_equal(scalar_matrix, vectorized_matrix))

    extra["xxh32_scalar_hashes_per_sec"] = total / scalar_s
    extra["xxh32_speedup"] = speedup
    extra["xxh32_outer_identical"] = outer_identical
    extra["xxh32_identity"] = bool(_xxh32_identity(rng)) and outer_identical
    kernel_ok = all(
        record["kernel_identity"] for record in extra["families"].values()
    )
    extra["kernel_identity"] = kernel_ok

    lines += [
        "",
        f"scalar xxhash32 baseline : {total / scalar_s:>14,.0f} hashes/sec "
        f"({scalar_s:.2f}s)",
        f"vectorized xxhash32      : "
        f"{total / vector_s:>14,.0f} hashes/sec ({vector_s * 1e3:.1f}ms)",
        f"speedup                  : {speedup:.0f}x "
        f"(gate: >= {MIN_XXH32_SPEEDUP:.0f}x)",
        f"vectorized == scalar on sampled grid: "
        f"{'yes' if extra['xxh32_identity'] else 'NO — IDENTITY VIOLATION'}",
        f"kernel == naive materialization (all families): "
        f"{'yes' if kernel_ok else 'NO — IDENTITY VIOLATION'}",
    ]
    return BenchResult(table="\n".join(lines), extra=extra)


def bench_hash_throughput(benchmark):
    """Gate the vectorized XXH32 speedup and both bit-identity contracts."""
    result = run_once(benchmark, _experiment)
    emit("hash_throughput", result)
    assert result.extra["xxh32_identity"], (
        "vectorized XXH32 diverged from the scalar reference"
    )
    assert result.extra["kernel_identity"], (
        "support-count kernel diverged from naive materialization"
    )
    assert result.extra["xxh32_speedup"] >= MIN_XXH32_SPEEDUP, (
        f"vectorized XXH32 speedup {result.extra['xxh32_speedup']:.1f}x "
        f"below the {MIN_XXH32_SPEEDUP:.0f}x gate"
    )


if __name__ == "__main__":
    raise SystemExit(standalone_main("hash_throughput", _experiment))
