"""Ablation — the hash-family choice inside SOLH.

The SOLH analysis assumes a universal family; the paper's prototype uses
seeded xxHash32, while this library defaults to Carter-Wegman (provably
2-universal and numpy-vectorizable).  This ablation checks that the
accuracy is family-independent (the estimator only needs pairwise-uniform
collisions) and measures the server-side aggregation speed of each family
— the computation/communication tradeoff Section IV-B2 discusses.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis import mse
from repro.data import ipums_like
from repro.frequency_oracles import SOLH
from repro.hashing import (
    CarterWegmanHashFamily,
    MultiplyShiftHashFamily,
    XXHash32Family,
)

from bench_common import bench_repeats, bench_rng, bench_scale, emit, run_once

DELTA = 1e-9
EPS_C = 0.5

FAMILIES = [CarterWegmanHashFamily(), MultiplyShiftHashFamily(), XXHash32Family()]


def _experiment() -> str:
    rng = bench_rng()
    data = ipums_like(rng, scale=min(bench_scale(), 0.05))
    truth = data.frequencies
    repeats = bench_repeats()
    lines = [
        f"IPUMS-like n={data.n}, d={data.d}, eps_c={EPS_C}; SOLH accuracy and "
        "server-side aggregation speed per hash family",
        f"{'family':<16}  {'MSE':>12}  {'aggregate 500 reports (s)':>26}",
    ]
    mses = {}
    for family in FAMILIES:
        oracle, __ = SOLH.for_central_target(
            data.d, EPS_C, data.n, DELTA, family=family
        )
        measured = float(
            np.mean(
                [
                    mse(truth, oracle.estimate_from_histogram(data.histogram, rng))
                    for __ in range(repeats)
                ]
            )
        )
        mses[family.name] = measured
        # Server-side timing: support-count 500 real reports over the domain.
        reports = oracle.privatize(rng.integers(0, data.d, 500), rng)
        start = time.perf_counter()
        oracle.support_counts(reports)
        elapsed = time.perf_counter() - start
        lines.append(f"{family.name:<16}  {measured:>12.3e}  {elapsed:>26.3f}")

    values = list(mses.values())
    ok_accuracy = max(values) < min(values) * 3.0
    lines.append(
        f"  [{'ok' if ok_accuracy else 'MISMATCH'}] accuracy is "
        "family-independent (within 3x across families)"
    )
    return "\n".join(lines)


def bench_ablation_hash_family(benchmark):
    """Validate that SOLH's accuracy does not depend on the hash family."""
    table = run_once(benchmark, _experiment)
    emit("ablation_hash_family", table)
    assert "MISMATCH" not in table
