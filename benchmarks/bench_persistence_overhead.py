"""Durable-state overhead: MemoryStateStore vs SqliteStateStore.

Runs one identical streaming workload through ``TelemetryPipeline``
twice — once against the default in-memory store and once against a
SQLite store on disk (WAL, ``synchronous=NORMAL``) — and reports the
ingest rate of each plus the overhead ratio.  The two runs share a seed,
so the bench also asserts the durability layer's core contract: the
persisted run's estimates are bit-identical to the in-memory run's.

Scale knobs are shared with the other benches (``REPRO_BENCH_SCALE``
etc.; see bench_common).
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from repro.data import zipf_histogram
from repro.data.synthetic import values_from_histogram
from repro.persistence import MemoryStateStore, SqliteStateStore
from repro.service import StreamConfig, TelemetryPipeline

from bench_common import BenchResult, bench_scale, bench_seed, emit, run_once, \
    standalone_main

D = 64
EPOCHS = 5
BASE_EPOCH_SIZE = 100_000  # at scale 1.0
DELTA = 1e-9
EPS_TARGETS = (1.0, 3.0, 6.0)


def _stream_once(config: StreamConfig, epoch_size: int, store):
    rng = np.random.default_rng(bench_seed())
    pipeline = TelemetryPipeline(config, rng, store=store)
    started = time.perf_counter()
    for __ in range(EPOCHS):
        histogram = zipf_histogram(epoch_size, D, 1.3, rng)
        pipeline.submit(values_from_histogram(histogram, rng))
        pipeline.end_epoch()
    elapsed = time.perf_counter() - started
    result = pipeline.result()
    return result, elapsed


def _experiment() -> BenchResult:
    epoch_size = max(1000, int(BASE_EPOCH_SIZE * bench_scale()))
    flush_size = max(500, epoch_size // 2)
    config = StreamConfig.from_targets(
        d=D,
        flush_size=flush_size,
        eps_targets=EPS_TARGETS,
        delta=DELTA,
        admitted_flushes=2 * EPOCHS * ((epoch_size + flush_size - 1) // flush_size),
    )

    memory_result, memory_elapsed = _stream_once(
        config, epoch_size, MemoryStateStore()
    )

    with tempfile.TemporaryDirectory(prefix="repro-bench-state-") as tmp:
        db_path = os.path.join(tmp, "state.db")
        with SqliteStateStore(db_path) as store:
            sqlite_result, sqlite_elapsed = _stream_once(
                config, epoch_size, store
            )
            db_bytes = sum(
                os.path.getsize(db_path + suffix)
                for suffix in ("", "-wal", "-shm")
                if os.path.exists(db_path + suffix)
            )

    identical = (
        memory_result.estimates.tobytes() == sqlite_result.estimates.tobytes()
        and memory_result.eps_spent == sqlite_result.eps_spent
    )
    memory_rate = (
        memory_result.n_genuine / memory_elapsed if memory_elapsed > 0 else None
    )
    sqlite_rate = (
        sqlite_result.n_genuine / sqlite_elapsed if sqlite_elapsed > 0 else None
    )
    overhead = (
        memory_elapsed and sqlite_elapsed / memory_elapsed or None
    )

    extra = {
        "d": D,
        "epochs": EPOCHS,
        "epoch_size": epoch_size,
        "flush_size": flush_size,
        "released_reports": memory_result.n_genuine,
        "memory_reports_per_sec": memory_rate,
        "sqlite_reports_per_sec": sqlite_rate,
        "sqlite_overhead_ratio": overhead,
        "sqlite_db_bytes": db_bytes,
        "estimates_identical": identical,
    }

    def rate(value) -> str:
        return f"{value:,.0f} reports/s" if value else "n/a"

    table = (
        f"{memory_result.n_genuine} reports released over {EPOCHS} epochs, "
        f"identical estimates: {identical}\n"
        f"memory store: {rate(memory_rate)}\n"
        f"sqlite store: {rate(sqlite_rate)} "
        f"(overhead x{overhead:.2f}, {db_bytes / 1024:.0f} KiB on disk)"
    )
    return BenchResult(table=table, extra=extra)


def bench_persistence_overhead(benchmark):
    """Measure the SQLite state store's ingest-rate overhead."""
    result = run_once(benchmark, _experiment)
    emit("persistence_overhead", result)
    assert result.extra["estimates_identical"]
    assert result.extra["released_reports"] > 0


if __name__ == "__main__":
    raise SystemExit(standalone_main("persistence_overhead", _experiment))
